// The stability-verdict service: a persistent TCP server exposing the
// phase-plane analysis engine over the newline-delimited JSON protocol
// of protocol.h (reference: docs/SERVICE.md).
//
// Execution shape:
//
//   accept thread -> one reader thread per connection
//                 -> bounded admission queue (blocking backpressure)
//                 -> single batcher thread
//                 -> micro-batches on the exec-layer ThreadPool
//
// Each reader resolves requests in arrival order: cheap ops (ping,
// stats, shutdown) and verdict-cache hits are answered inline; misses
// are pushed onto the admission queue and the reader blocks until the
// batcher has executed the job, so responses on one connection are
// always FIFO.  The batcher drains up to `max_batch` jobs at a time,
// deduplicates jobs sharing a cache key (one execution answers all of
// them), dispatches one pool task per distinct key and waits for the
// batch to finish; handlers themselves run serially (no nested pools),
// so parallelism comes from batching across connections.
//
// Determinism contract: every analytic response is a pure function of
// its quantized cache key (protocol.h), so a cached answer is
// byte-identical to a cold one, and verdict text is byte-identical to
// the matching `bcn_analyze` stdout.
//
// The server binds to 127.0.0.1 only: it is local tooling, not an
// internet-facing daemon.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/verdict_cache.h"

namespace bcn::service {

struct ServiceConfig {
  int port = 0;  // 0 -> ephemeral; the bound port is reported by port()
  int threads = 0;  // pool workers (exec::resolve_threads semantics)
  std::size_t cache_entries = 4096;
  std::size_t cache_shards = 8;
  // Admission-queue bound: readers block (backpressure) when this many
  // cache misses are already waiting for the batcher.
  std::size_t queue_capacity = 256;
  // Largest micro-batch the batcher dispatches onto the pool at once.
  std::size_t max_batch = 32;
  // A connection sending a longer unterminated line is cut off.
  std::size_t max_line_bytes = 1 << 20;
  obs::MonitorSpec monitors;
};

class ServiceServer {
 public:
  explicit ServiceServer(const ServiceConfig& config);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds, listens and starts the accept / batcher threads.  False on
  // socket failure; error() then holds the reason.
  bool start();
  const std::string& error() const { return error_; }

  // The actually-bound port (after start()).
  int port() const { return port_; }

  // True once a client issued the shutdown op (or request_shutdown()
  // was called).  The server keeps serving until stop() runs, so the
  // shutdown response can flush; the thread blocked in
  // wait_for_shutdown() is expected to call stop().
  bool shutdown_requested() const;
  void request_shutdown();
  // Blocks up to `seconds` for a shutdown request; true when requested.
  // Short timeouts let callers interleave a signal-flag poll (a signal
  // handler cannot safely notify a condition variable).
  bool wait_for_shutdown(double seconds);

  // Full teardown: unblocks the accept loop and every reader, drains
  // the admission queue through the batcher (pending jobs still get
  // answers), joins all threads, closes all sockets.  Idempotent.
  void stop();

  const obs::MetricsRegistry& metrics() const { return metrics_; }
  VerdictCache& cache() { return *cache_; }

 private:
  struct Job {
    Request request;
    std::string key;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::string body;  // canonical (id-less) response
    bool error = false;
  };

  // Bounded blocking MPSC queue between readers and the batcher.
  class JobQueue {
   public:
    explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}
    // Blocks while full; false once stopped (the job was not enqueued).
    bool push(std::shared_ptr<Job> job);
    // Blocks for the next job; null only when stopped AND empty, so the
    // batcher drains every admitted job before exiting.
    std::shared_ptr<Job> pop_wait();
    // Grabs up to `max` more jobs without waiting.
    void drain_into(std::vector<std::shared_ptr<Job>>& out, std::size_t max);
    void stop();

   private:
    std::size_t capacity_;
    std::mutex mutex_;
    std::condition_variable ready_, space_;
    std::deque<std::shared_ptr<Job>> jobs_;
    bool stopped_ = false;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void reader_loop(Connection* conn);
  void handle_line(Connection* conn, std::string line);
  void batch_loop();
  static bool write_line(int fd, const std::string& body);
  void finish(Job& job, std::string body, bool is_error);

  ServiceConfig config_;
  ServiceOptions options_;
  std::string error_;

  // Declared before the cache, whose counters live in the registry.
  // Every registry entry is created in the constructor: the stats op
  // snapshots the registry concurrently with handlers, which is safe
  // only because the entry maps never change after construction.
  obs::MetricsRegistry metrics_;
  obs::Counter* connections_;
  obs::Counter* requests_;
  obs::Counter* errors_;
  obs::Counter* batches_;
  std::unique_ptr<VerdictCache> cache_;
  std::unique_ptr<exec::ThreadPool> pool_;
  JobQueue queue_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::thread batch_thread_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // stop() already completed (under conns_mutex_)

  mutable std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace bcn::service
