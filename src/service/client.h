// Minimal blocking client for the stability-verdict service protocol:
// one TCP connection, newline-delimited request/response lines.  Used
// by tools/bcn_load, the service bench and the tests.
#pragma once

#include <optional>
#include <string>

namespace bcn::service {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  LineClient(LineClient&& other) noexcept
      : fd_(other.fd_),
        buffer_(std::move(other.buffer_)),
        error_(std::move(other.error_)) {
    other.fd_ = -1;
  }
  LineClient& operator=(LineClient&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      error_ = std::move(other.error_);
      other.fd_ = -1;
    }
    return *this;
  }

  // Connects to host:port (host as dotted quad, e.g. "127.0.0.1").
  // False on failure; error() then holds the reason.
  bool connect_to(const std::string& host, int port);
  const std::string& error() const { return error_; }
  bool connected() const { return fd_ >= 0; }

  // Writes `line` plus the terminating newline.
  bool send_line(const std::string& line);
  // Blocks for the next response line (newline stripped); nullopt on
  // EOF or error.
  std::optional<std::string> read_line();
  // send_line + read_line.
  std::optional<std::string> request(const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
  std::string error_;
};

}  // namespace bcn::service
