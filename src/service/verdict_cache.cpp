#include "service/verdict_cache.h"

#include <cstdio>
#include <cstdlib>

namespace bcn::service {

double quantize(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return std::strtod(buf, nullptr);
}

std::string quantize_key(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

VerdictCache::VerdictCache(const Config& config,
                           obs::MetricsRegistry* metrics)
    : hits_(&own_hits_),
      misses_(&own_misses_),
      evictions_(&own_evictions_),
      entries_(&own_entries_) {
  const std::size_t shard_count = config.shards > 0 ? config.shards : 1;
  const std::size_t entries = config.entries > 0 ? config.entries : 1;
  per_shard_capacity_ = (entries + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics) {
    hits_ = &metrics->counter("service.cache.hits");
    misses_ = &metrics->counter("service.cache.misses");
    evictions_ = &metrics->counter("service.cache.evictions");
    entries_ = &metrics->gauge("service.cache.entries");
  }
}

std::size_t VerdictCache::shard_of(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

std::optional<std::string> VerdictCache::get(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->inc();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->inc();
  return it->second->second;
}

void VerdictCache::put(const std::string& key, std::string value) {
  Shard& shard = *shards_[shard_of(key)];
  std::size_t delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index[key] = shard.lru.begin();
    delta = 1;
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_->inc();
      delta = 0;
    }
  }
  if (delta > 0) {
    // Occupancy gauge: recomputed cheaply as a relaxed running total
    // would race with concurrent evictions on other shards; size() is
    // only called on put, which is already the slow (cold) path.
    entries_->set(static_cast<double>(size()));
  }
}

std::size_t VerdictCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace bcn::service
