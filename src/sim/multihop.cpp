#include "sim/multihop.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/source.h"
#include "sim/stats.h"
#include "sim/switch_port.h"

namespace bcn::sim {
namespace {

constexpr std::uint32_t kHotDst = 0;   // routed to CORE port A
constexpr std::uint32_t kColdDst = 1;  // routed to CORE port B

}  // namespace

MultihopResult run_victim_scenario(const MultihopConfig& config) {
  Simulator sim;

  // --- CORE ports ------------------------------------------------------
  SwitchPortConfig hot_cfg;
  hot_cfg.rate = config.hot_rate;
  hot_cfg.buffer_bits = config.core_buffer;
  hot_cfg.pause_duration = 64 * kMicrosecond;
  if (config.enable_pause) {
    hot_cfg.pause_threshold =
        config.pause_threshold_fraction * config.core_buffer;
  }
  if (config.enable_bcn) {
    hot_cfg.bcn_pm = config.bcn_pm;
    hot_cfg.bcn_q0 = config.bcn_q0;
    hot_cfg.bcn_w = config.bcn_w;
    hot_cfg.cpid = 7;
  }
  hot_cfg.port_label = kMultihopHotPort;
  SwitchPort hot_port(sim, hot_cfg);

  SwitchPortConfig cold_cfg;
  cold_cfg.rate = config.line_rate;
  cold_cfg.buffer_bits = config.core_buffer;
  cold_cfg.port_label = kMultihopColdPort;
  SwitchPort cold_port(sim, cold_cfg);

  // --- edge switch E1 ----------------------------------------------------
  SwitchPortConfig edge_cfg;
  edge_cfg.rate = config.line_rate;
  edge_cfg.buffer_bits = config.edge_buffer;
  edge_cfg.pause_duration = 64 * kMicrosecond;
  if (config.enable_pause) {
    edge_cfg.pause_threshold =
        config.pause_threshold_fraction * config.edge_buffer;
  }
  edge_cfg.port_label = kMultihopEdgePort;
  SwitchPort edge(sim, edge_cfg);

  if (config.observer) {
    hot_port.set_observer(config.observer);
    cold_port.set_observer(config.observer);
    edge.set_observer(config.observer);
  }

  // E1 forwards to CORE: route by destination after the hop delay.
  edge.set_sink([&](const Frame& frame) {
    sim.schedule_after(config.propagation_delay, [&, frame] {
      (frame.dst == kHotDst ? hot_port : cold_port).on_frame(frame);
    });
  });

  // CORE port A back-pressures E1 (PAUSE rolls back one hop).
  hot_port.set_pause_upstream([&](const PauseFrame& pause) {
    sim.schedule_after(config.propagation_delay,
                       [&, pause] { edge.on_pause(pause); });
  });

  // --- sources -----------------------------------------------------------
  std::vector<std::unique_ptr<Source>> sources;
  const int total = config.num_culprits + 1;
  sources.reserve(total);
  for (int i = 0; i < total; ++i) {
    const bool is_victim = i == config.num_culprits;
    SourceConfig sc;
    sc.id = static_cast<SourceId>(i);
    sc.dst = is_victim ? kColdDst : kHotDst;
    sc.frame_bits = config.frame_bits;
    sc.initial_rate = config.offered_rate;
    sc.regulator.min_rate = 10e6;
    sc.regulator.max_rate = config.offered_rate;  // offered-load cap
    sc.regulator.frame_bits = config.frame_bits;
    // Culprits run QCN-style recovery so negative-only BCN from the hot
    // port suffices; the victim never receives feedback.
    sc.regulator.mode = FeedbackMode::QcnSelfIncrease;
    sc.regulator.qcn_active_increase = 2e6;
    sources.push_back(std::make_unique<Source>(sim, sc));
  }

  // E1 back-pressures every source.
  edge.set_pause_upstream([&](const PauseFrame& pause) {
    sim.schedule_after(config.propagation_delay, [&, pause] {
      for (auto& src : sources) src->on_pause(pause);
    });
  });

  // BCN from the hot port travels back to the culprit source.
  hot_port.set_bcn_sender([&](const BcnMessage& msg) {
    sim.schedule_after(2 * config.propagation_delay, [&, msg] {
      if (msg.target < sources.size()) sources[msg.target]->on_bcn(msg);
    });
  });

  for (auto& src : sources) {
    src->start([&](const Frame& frame) {
      sim.schedule_after(config.propagation_delay,
                         [&, frame] { edge.on_frame(frame); });
    });
  }

  // Peak-queue tracking, plus per-port queue timelines when observed.
  double edge_peak = 0.0;
  double hot_peak = 0.0;
  obs::Timeline* edge_tl = nullptr;
  obs::Timeline* hot_tl = nullptr;
  obs::Timeline* cold_tl = nullptr;
  if (config.observer) {
    auto& timelines = config.observer->timelines();
    edge_tl = &timelines.series("port.edge.queue_bits");
    hot_tl = &timelines.series("port.hot.queue_bits");
    cold_tl = &timelines.series("port.cold.queue_bits");
  }
  std::function<void()> monitor = [&] {
    edge_peak = std::max(edge_peak, edge.queue_bits());
    hot_peak = std::max(hot_peak, hot_port.queue_bits());
    if (config.observer) {
      const double t = to_seconds(sim.now());
      edge_tl->record(t, edge.queue_bits());
      hot_tl->record(t, hot_port.queue_bits());
      cold_tl->record(t, cold_port.queue_bits());
    }
    sim.schedule_after(20 * kMicrosecond, monitor);
  };
  sim.schedule_at(0, monitor);

  sim.run_until(config.duration);

  MultihopResult result;
  const double seconds = to_seconds(config.duration);
  result.victim_throughput = cold_port.stats().bits_delivered / seconds;
  result.culprit_throughput = hot_port.stats().bits_delivered / seconds;
  result.core_drops = hot_port.stats().dropped + cold_port.stats().dropped;
  result.edge_drops = edge.stats().dropped;
  result.pauses_core_to_edge = hot_port.stats().pauses_sent;
  result.pauses_edge_to_sources = edge.stats().pauses_sent;
  result.bcn_messages = hot_port.stats().bcn_sent;
  result.edge_peak_queue = edge_peak;
  result.hot_peak_queue = hot_peak;
  return result;
}

}  // namespace bcn::sim
