#include "sim/multihop.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/mechanism.h"
#include "sim/source.h"
#include "sim/stats.h"
#include "sim/switch_port.h"

namespace bcn::sim {
namespace {

constexpr std::uint32_t kHotDst = 0;   // routed to CORE port A
constexpr std::uint32_t kColdDst = 1;  // routed to CORE port B

// All inter-hop wiring of the victim scenario as one typed-event hub:
// frame hops, back-pressure deliveries, BCN unicast, and the periodic
// queue monitor are events dispatched back to this object, so the hot
// loop schedules POD records instead of allocating closures.
class Scenario : public EventTarget {
 public:
  // Channel tags.
  static constexpr std::uint32_t kTagFrameToEdge = 0;
  static constexpr std::uint32_t kTagFrameToCore = 1;
  static constexpr std::uint32_t kTagPauseToEdge = 2;
  static constexpr std::uint32_t kTagPauseToSources = 3;
  static constexpr std::uint32_t kTagBcnToSource = 4;
  static constexpr std::uint32_t kTagMonitor = 5;
  static constexpr std::uint32_t kTagFlapEdge = 6;

  explicit Scenario(const MultihopConfig& config) : config_(config) {
    // --- CORE ports ------------------------------------------------------
    SwitchPortConfig hot_cfg;
    hot_cfg.rate = config.hot_rate;
    hot_cfg.buffer_bits = config.core_buffer;
    hot_cfg.pause_duration = 64 * kMicrosecond;
    if (config.enable_pause) {
      hot_cfg.pause_threshold =
          config.pause_threshold_fraction * config.core_buffer;
    }
    if (config.enable_bcn) {
      hot_cfg.bcn_pm = config.bcn_pm;
      hot_cfg.bcn_q0 = config.bcn_q0;
      hot_cfg.bcn_w = config.bcn_w;
      hot_cfg.cpid = 7;
    }
    hot_cfg.port_label = kMultihopHotPort;
    hot_port_ = std::make_unique<SwitchPort>(sim_, hot_cfg);

    SwitchPortConfig cold_cfg;
    cold_cfg.rate = config.line_rate;
    cold_cfg.buffer_bits = config.core_buffer;
    cold_cfg.port_label = kMultihopColdPort;
    cold_port_ = std::make_unique<SwitchPort>(sim_, cold_cfg);

    // --- edge switch E1 --------------------------------------------------
    SwitchPortConfig edge_cfg;
    edge_cfg.rate = config.line_rate;
    edge_cfg.buffer_bits = config.edge_buffer;
    edge_cfg.pause_duration = 64 * kMicrosecond;
    if (config.enable_pause) {
      edge_cfg.pause_threshold =
          config.pause_threshold_fraction * config.edge_buffer;
    }
    edge_cfg.port_label = kMultihopEdgePort;
    edge_ = std::make_unique<SwitchPort>(sim_, edge_cfg);

    if (config.observer) {
      hot_port_->set_observer(config.observer);
      cold_port_->set_observer(config.observer);
      edge_->set_observer(config.observer);
    }

    if (config.monitors.spec.any()) {
      run_monitor_.configure(
          config.monitors,
          config.observer ? &config.observer->events() : nullptr);
      // One shared bound across ports: both buffers default equal, and the
      // per-frame check is about catching occupancy outside [0, B], not
      // per-port policy.
      run_monitor_.set_queue_bound(
          std::max(config.edge_buffer, config.core_buffer));
      run_monitor_.set_rate_bound(
          static_cast<double>(config.num_culprits + 1) * config.offered_rate);
      hot_port_->set_monitor(&run_monitor_);
      cold_port_->set_monitor(&run_monitor_);
      edge_->set_monitor(&run_monitor_);
    }

    if (config.faults.armed()) {
      obs::EventTrace* trace =
          config.observer ? &config.observer->events() : nullptr;
      // Reverse-path lanes key off the port labels; the E1 -> CORE
      // forward link is entity 0.
      hot_faults_ = FaultInjector(config.faults, kMultihopHotPort,
                                  &fault_counters_, trace);
      edge_faults_ = FaultInjector(config.faults, kMultihopEdgePort,
                                   &fault_counters_, trace);
      link_faults_ = FaultInjector(config.faults, 0, &fault_counters_, trace);
      hot_port_->set_fault_injector(&hot_faults_);
      edge_->set_fault_injector(&edge_faults_);
      for (const LinkFlapWindow& w : config.faults.flaps) {
        sim_.schedule_event(w.down_at, this, EventKind::Tick, kTagFlapEdge);
        sim_.schedule_event(w.up_at, this, EventKind::Tick, kTagFlapEdge);
      }
    }

    // E1 forwards to CORE: route by destination after the hop delay.
    edge_->set_sink(
        EventLink(sim_, this, kTagFrameToCore, config.propagation_delay));

    // CORE port A back-pressures E1 (PAUSE rolls back one hop).
    hot_port_->set_pause_upstream(
        EventLink(sim_, this, kTagPauseToEdge, config.propagation_delay));

    // --- sources ---------------------------------------------------------
    // Culprits run QCN-style recovery so negative-only BCN from the hot
    // port suffices; the victim never receives feedback.
    core::MechanismConfig mcfg;
    mcfg.qcn.active_increase = 2e6;
    mcfg.qcn.frame_bits = config.frame_bits;
    qcn_mechanism_ = make_packet_mechanism("qcn", mcfg);
    const int total = config.num_culprits + 1;
    sources_.reserve(total);
    for (int i = 0; i < total; ++i) {
      const bool is_victim = i == config.num_culprits;
      SourceConfig sc;
      sc.id = static_cast<SourceId>(i);
      sc.dst = is_victim ? kColdDst : kHotDst;
      sc.frame_bits = config.frame_bits;
      sc.initial_rate = config.offered_rate;
      sc.regulator.min_rate = 10e6;
      sc.regulator.max_rate = config.offered_rate;  // offered-load cap
      sc.regulator.frame_bits = config.frame_bits;
      sc.mechanism = qcn_mechanism_.get();
      sources_.push_back(std::make_unique<Source>(sim_, sc));
    }

    // E1 back-pressures every source.
    edge_->set_pause_upstream(
        EventLink(sim_, this, kTagPauseToSources, config.propagation_delay));

    // BCN from the hot port travels back to the culprit source.
    hot_port_->set_bcn_sender(
        EventLink(sim_, this, kTagBcnToSource, 2 * config.propagation_delay));

    const EventLink to_edge(sim_, this, kTagFrameToEdge,
                            config.propagation_delay);
    for (auto& src : sources_) src->start(to_edge);

    if (config.observer) {
      auto& timelines = config.observer->timelines();
      edge_tl_ = &timelines.series("port.edge.queue_bits");
      hot_tl_ = &timelines.series("port.hot.queue_bits");
      cold_tl_ = &timelines.series("port.cold.queue_bits");
    }
    monitor_timer_ = sim_.schedule_event(0, this, EventKind::Tick, kTagMonitor);
  }

  void on_event(const SimEvent& event) override {
    switch (event.tag) {
      case kTagFrameToEdge:
        edge_->on_frame(event.payload.frame);
        break;
      case kTagFrameToCore:
        if (link_faults_.armed()) {
          const Frame& f = event.payload.frame;
          if (link_faults_.cut_by_flap(sim_.now(), f.source) ||
              link_faults_.drop_data(sim_.now(), f.source)) {
            break;
          }
        }
        (event.payload.frame.dst == kHotDst ? *hot_port_ : *cold_port_)
            .on_frame(event.payload.frame);
        break;
      case kTagPauseToEdge:
        edge_->on_pause(event.payload.pause);
        break;
      case kTagPauseToSources:
        for (auto& src : sources_) src->on_pause(event.payload.pause);
        break;
      case kTagBcnToSource:
        if (event.payload.bcn.target < sources_.size()) {
          sources_[event.payload.bcn.target]->on_bcn(event.payload.bcn);
        }
        break;
      case kTagMonitor:
        monitor();
        break;
      case kTagFlapEdge: {
        const bool down = link_faults_.link_down(sim_.now());
        if (down) ++fault_counters_.link_flaps;
        if (config_.observer) {
          config_.observer->events().record(
              {to_seconds(sim_.now()),
               down ? obs::EventKind::LinkDown : obs::EventKind::LinkUp, 0, 0,
               0.0, 0.0});
        }
        break;
      }
    }
  }

  MultihopResult run() {
    sim_.run_until(config_.duration);

    MultihopResult result;
    const double seconds = to_seconds(config_.duration);
    result.victim_throughput = cold_port_->stats().bits_delivered / seconds;
    result.culprit_throughput = hot_port_->stats().bits_delivered / seconds;
    result.core_drops =
        hot_port_->stats().dropped + cold_port_->stats().dropped;
    result.edge_drops = edge_->stats().dropped;
    result.pauses_core_to_edge = hot_port_->stats().pauses_sent;
    result.pauses_edge_to_sources = edge_->stats().pauses_sent;
    result.bcn_messages = hot_port_->stats().bcn_sent;
    result.edge_peak_queue = edge_peak_;
    result.hot_peak_queue = hot_peak_;
    result.events_executed = sim_.executed();
    result.fault_counters = fault_counters_;
    if (config_.metrics) {
      sim_.export_metrics(*config_.metrics);
      if (config_.faults.armed()) {
        export_fault_metrics(fault_counters_, *config_.metrics);
      }
      if (run_monitor_.armed()) run_monitor_.export_metrics(*config_.metrics);
    }
    return result;
  }

 private:
  void monitor() {
    edge_peak_ = std::max(edge_peak_, edge_->queue_bits());
    hot_peak_ = std::max(hot_peak_, hot_port_->queue_bits());
    if (config_.observer) {
      const double t = to_seconds(sim_.now());
      edge_tl_->record(t, edge_->queue_bits());
      hot_tl_->record(t, hot_port_->queue_bits());
      cold_tl_->record(t, cold_port_->queue_bits());
    }
    if (run_monitor_.armed()) {
      // The sampled invariants watch the hot port: it is the congestion
      // point whose stalled deliveries signal a PFC deadlock, and its
      // counters form a closed conservation system (arrivals = enqueued +
      // dropped at one queue).
      const SwitchPortStats& hot = hot_port_->stats();
      obs::MonitorSample s;
      s.t = to_seconds(sim_.now());
      s.queue_bits = hot_port_->queue_bits();
      double rate = 0.0;
      for (const auto& src : sources_) rate += src->rate();
      s.aggregate_rate = rate;
      s.frames_sent = hot.enqueued + hot.dropped;
      s.frames_enqueued = hot.enqueued;
      s.frames_delivered = hot.delivered;
      s.frames_dropped = hot.dropped;
      s.pause_frames = hot.pauses_sent + edge_->stats().pauses_sent;
      s.bits_delivered = hot.bits_delivered;
      run_monitor_.on_sample(s);
    }
    sim_.reschedule(monitor_timer_, sim_.now() + 20 * kMicrosecond);
  }

  MultihopConfig config_;
  Simulator sim_;
  std::unique_ptr<SwitchPort> hot_port_;
  std::unique_ptr<SwitchPort> cold_port_;
  std::unique_ptr<SwitchPort> edge_;
  // Declared before sources_, whose regulators point into it.
  std::unique_ptr<PacketMechanism> qcn_mechanism_;
  std::vector<std::unique_ptr<Source>> sources_;
  FaultCounters fault_counters_;
  FaultInjector hot_faults_;
  FaultInjector edge_faults_;
  FaultInjector link_faults_;
  obs::RunMonitor run_monitor_;
  EventId monitor_timer_ = kInvalidEvent;
  double edge_peak_ = 0.0;
  double hot_peak_ = 0.0;
  obs::Timeline* edge_tl_ = nullptr;
  obs::Timeline* hot_tl_ = nullptr;
  obs::Timeline* cold_tl_ = nullptr;
};

}  // namespace

MultihopResult run_victim_scenario(const MultihopConfig& config) {
  Scenario scenario(config);
  return scenario.run();
}

}  // namespace bcn::sim
