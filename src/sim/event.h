// Typed POD event records for the discrete-event core.
//
// Steady-state simulation traffic -- frame hops, service completions, BCN
// and PAUSE deliveries, pacing tokens, periodic ticks -- is described by a
// small tagged union dispatched to the owning object, instead of a
// heap-allocated std::function closure per event.  The payload union holds
// only trivially-copyable wire structs, so an event record can live in a
// recycled pool slot and be copied to the dispatch stack without touching
// the allocator.
#pragma once

#include <cstdint>

#include "sim/frame.h"
#include "sim/time.h"

namespace bcn::sim {

// Handle for cancelling or rescheduling a scheduled event.  Encodes a pool
// slot and a generation; a handle held past the event's firing simply goes
// stale (its generation no longer matches) -- cancel/reschedule on a stale
// handle are cheap no-ops, never tombstones.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// What an event means to its owner.  `Callback` is the escape hatch for
// tests and one-off wiring: it carries a std::function and is the only
// kind that may allocate.
enum class EventKind : std::uint8_t {
  Callback = 0,    // legacy closure (tests, ad-hoc wiring)
  FrameArrival,    // a Frame reaches a switch/port after a hop delay
  FrameDeparture,  // service completion at a queue's output
  BcnDelivery,     // a BcnMessage reaches its reaction point
  PauseDelivery,   // an 802.3x PAUSE reaches the paused hop
  PauseExpiry,     // a paused server may resume
  SourceToken,     // a source's pacing timer: emit the next frame
  Tick,            // periodic monitor / sample / self-increase timer
};

// Every payload member is trivially copyable; the union itself is left
// uninitialized (the kind says which member, if any, is live).
union EventPayload {
  Frame frame;
  BcnMessage bcn;
  PauseFrame pause;
  EventPayload() {}  // no member activated; kinds without payload use none
};

// The dispatch view handed to EventTarget::on_event.  `tag` is an
// owner-chosen discriminator so one target can own several channels or
// timers (e.g. a network distinguishing its sample tick from its BCN
// delivery channel); `id` is the handle of the firing event, usable with
// Simulator::reschedule to re-arm the same slot (timer reuse).
struct SimEvent {
  EventKind kind = EventKind::Callback;
  std::uint32_t tag = 0;
  EventId id = kInvalidEvent;
  EventPayload payload;
};

// Implemented by every object that owns typed events (sources, switch
// ports, network/scenario wiring).  Dispatch is a single virtual call; the
// payload is a stack copy, so handlers may schedule or cancel freely.
class EventTarget {
 public:
  virtual void on_event(const SimEvent& event) = 0;

 protected:
  ~EventTarget() = default;
};

}  // namespace bcn::sim
