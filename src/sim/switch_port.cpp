#include "sim/switch_port.h"

#include <algorithm>
#include <cmath>

namespace bcn::sim {

SwitchPort::SwitchPort(Simulator& sim, SwitchPortConfig config)
    : sim_(sim), config_(config) {
  if (config_.bcn_pm > 0.0) {
    sample_every_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(1.0 / config_.bcn_pm)));
  }
}

void SwitchPort::on_frame(const Frame& frame) {
  maybe_sample(frame);
  if (queue_bits_ + frame.size_bits > config_.buffer_bits) {
    ++stats_.dropped;
    maybe_pause_upstream();
    return;
  }
  queue_.push_back(frame);
  queue_bits_ += frame.size_bits;
  ++stats_.enqueued;
  if (monitor_) {
    monitor_->check_queue(to_seconds(sim_.now()), config_.port_label,
                          queue_bits_);
  }
  maybe_pause_upstream();
  if (!serving_ && sim_.now() >= paused_until_) start_service();
}

void SwitchPort::on_pause(const PauseFrame& pause) {
  paused_until_ = std::max(paused_until_, sim_.now() + pause.duration);
  // In-flight service completes (a frame on the wire cannot be recalled);
  // the pause gates the next start_service.
}

void SwitchPort::maybe_sample(const Frame& frame) {
  if (sample_every_ == 0 || !(bcn_link_ || bcn_)) return;
  if (++arrivals_since_sample_ < sample_every_) return;
  arrivals_since_sample_ = 0;
  const double delta_q = queue_bits_ - queue_at_last_sample_;
  queue_at_last_sample_ = queue_bits_;
  const double sigma =
      (config_.bcn_q0 - queue_bits_) - config_.bcn_w * delta_q;
  if (observer_) observer_->record_sigma(sigma);
  // Negative feedback only on shared-fabric ports (positive feedback is
  // the single-bottleneck Network's job; multi-hop scenarios rely on the
  // sources' own recovery or on separate positive paths).
  if (sigma < 0.0) {
    ++stats_.bcn_sent;
    if (observer_) {
      observer_->events().record({to_seconds(sim_.now()),
                                  obs::EventKind::BcnNegativeSent,
                                  config_.cpid, frame.source, sigma, 0.0});
    }
    const BcnMessage message{.cpid = config_.cpid, .target = frame.source,
                             .sigma = sigma, .sent_at = sim_.now()};
    SimTime extra_delay = 0;
    if (faults_) {
      if (faults_->drop_bcn(sim_.now(), frame.source)) return;
      extra_delay = faults_->bcn_extra_delay(sim_.now(), frame.source);
      if (faults_->duplicate_bcn(sim_.now(), frame.source)) {
        // The duplicate travels on time; only the original may be delayed.
        if (bcn_link_) {
          bcn_link_.send(message);
        } else {
          bcn_(message);
        }
      }
    }
    if (bcn_link_) {
      bcn_link_.send(message, extra_delay);
    } else {
      bcn_(message);
    }
  }
}

void SwitchPort::maybe_pause_upstream() {
  if (config_.pause_threshold <= 0.0 || !(pause_link_ || pause_)) return;
  if (queue_bits_ < config_.pause_threshold) return;
  if (sim_.now() < pause_cooldown_until_) return;
  pause_cooldown_until_ = sim_.now() + config_.pause_duration;
  ++stats_.pauses_sent;
  if (observer_) {
    const double duration_s = to_seconds(config_.pause_duration);
    observer_->events().record({to_seconds(sim_.now()),
                                obs::EventKind::PauseOn, config_.port_label,
                                0, 0.0, duration_s});
    observer_->events().record({to_seconds(pause_cooldown_until_),
                                obs::EventKind::PauseOff, config_.port_label,
                                0, 0.0, duration_s});
  }
  // A lost PAUSE leaves the PauseOn edge with no PauseApplied upstream.
  if (faults_ && faults_->drop_pause(sim_.now())) return;
  if (pause_link_) {
    pause_link_.send(PauseFrame{config_.pause_duration, sim_.now()});
  } else {
    pause_({config_.pause_duration, sim_.now()});
  }
}

void SwitchPort::on_event(const SimEvent& event) {
  if (event.tag == kTagDepart) {
    finish_service();
  } else {
    resume_after_pause();
  }
}

void SwitchPort::resume_after_pause() {
  serving_ = false;
  if (sim_.now() >= paused_until_) start_service();
}

void SwitchPort::start_service() {
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  if (sim_.now() < paused_until_) {
    serving_ = true;  // reserve the server; resume when the pause expires
    sim_.schedule_event(paused_until_, this, EventKind::PauseExpiry,
                        kTagResume);
    return;
  }
  serving_ = true;
  depart_timer_ = sim_.arm(
      depart_timer_, sim_.now() + service_time(queue_.front().size_bits), this,
      EventKind::FrameDeparture, kTagDepart);
}

void SwitchPort::finish_service() {
  const Frame frame = queue_.front();
  queue_.pop_front();
  queue_bits_ = std::max(queue_bits_ - frame.size_bits, 0.0);
  if (monitor_) {
    monitor_->check_queue(to_seconds(sim_.now()), config_.port_label,
                          queue_bits_);
  }
  ++stats_.delivered;
  stats_.bits_delivered += frame.size_bits;
  if (sink_link_) {
    sink_link_.send(frame);
  } else if (sink_) {
    sink_(frame);
  }
  serving_ = false;
  start_service();
}

}  // namespace bcn::sim
