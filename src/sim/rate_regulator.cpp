#include "sim/rate_regulator.h"

#include <algorithm>

namespace bcn::sim {

RateRegulator::RateRegulator(const RegulatorConfig& config,
                             double initial_rate, SimTime now,
                             const PacketMechanism* mechanism)
    : config_(config),
      mechanism_(mechanism ? mechanism : &default_bcn_mechanism()),
      last_update_(now) {
  state_.rate = initial_rate;
  clamp();
  counters_.min_rate_seen = counters_.max_rate_seen = state_.rate;
  mechanism_->init_state(state_);
}

void RateRegulator::on_bcn(const BcnMessage& message, SimTime now) {
  if (message.sigma < 0.0 && !associated_) {
    associated_ = true;
    cpid_ = message.cpid;
  }
  const double dt = to_seconds(std::max<SimTime>(now - last_update_, 0));
  last_update_ = now;
  counters_.last_sigma = message.sigma;
  switch (mechanism_->apply_feedback(state_, config_, message, dt)) {
    case AppliedFeedback::Positive:
      ++counters_.bcn_positive_applied;
      break;
    case AppliedFeedback::Negative:
      ++counters_.bcn_negative_applied;
      break;
    case AppliedFeedback::RateAdvert:
      ++counters_.rate_adverts_applied;
      break;
    case AppliedFeedback::None:
      break;
  }
  clamp();
  note_rate();
  // Draft behavior: a regulator whose rate has recovered to the line rate
  // dissociates and its frames drop the RRT tag.
  if (state_.rate >= config_.max_rate) associated_ = false;
}

void RateRegulator::self_increase() {
  if (!mechanism_->has_self_increase()) return;
  mechanism_->self_increase(state_, config_);
  ++counters_.self_increases;
  clamp();
  note_rate();
}

void RateRegulator::clamp() {
  state_.rate = std::clamp(state_.rate, config_.min_rate, config_.max_rate);
}

void RateRegulator::note_rate() {
  counters_.min_rate_seen = std::min(counters_.min_rate_seen, state_.rate);
  counters_.max_rate_seen = std::max(counters_.max_rate_seen, state_.rate);
}

}  // namespace bcn::sim
