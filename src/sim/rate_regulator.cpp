#include "sim/rate_regulator.h"

#include <algorithm>
#include <cmath>

namespace bcn::sim {

RateRegulator::RateRegulator(const RegulatorConfig& config,
                             double initial_rate, SimTime now)
    : config_(config), rate_(initial_rate), last_update_(now) {
  clamp();
  counters_.min_rate_seen = counters_.max_rate_seen = rate_;
  target_rate_ = rate_;
  recovery_cycles_ = config_.qcn_fast_recovery_cycles;  // no recovery armed
}

void RateRegulator::on_bcn(const BcnMessage& message, SimTime now) {
  if (message.sigma < 0.0 && !associated_) {
    associated_ = true;
    cpid_ = message.cpid;
  }
  const double dt = to_seconds(std::max<SimTime>(now - last_update_, 0));
  last_update_ = now;
  counters_.last_sigma = message.sigma;
  switch (config_.mode) {
    case FeedbackMode::FluidMatched:
      apply_fluid(message.sigma, dt);
      break;
    case FeedbackMode::DraftPerMessage:
      apply_draft(message.sigma);
      break;
    case FeedbackMode::QcnSelfIncrease:
      apply_qcn(message.sigma);
      break;
    case FeedbackMode::FeraExplicitRate:
      if (message.advertised_rate >= 0.0) {
        const double alpha = config_.fera_smoothing;
        rate_ = (1.0 - alpha) * rate_ + alpha * message.advertised_rate;
        ++counters_.rate_adverts_applied;
      }
      break;
  }
  if (config_.mode != FeedbackMode::FeraExplicitRate) {
    if (message.sigma < 0.0) {
      ++counters_.bcn_negative_applied;
    } else if (message.sigma > 0.0) {
      ++counters_.bcn_positive_applied;
    }
  }
  clamp();
  note_rate();
  // Draft behavior: a regulator whose rate has recovered to the line rate
  // dissociates and its frames drop the RRT tag.
  if (rate_ >= config_.max_rate) associated_ = false;
}

void RateRegulator::apply_fluid(double sigma, double dt) {
  if (sigma > 0.0) {
    rate_ += config_.gi * config_.ru * sigma * dt;  // dr = Gi Ru sigma dt
  } else if (sigma < 0.0) {
    // Exact integration of dr/dt = Gd sigma r over dt (sigma held).
    rate_ *= std::exp(config_.gd * sigma * dt);
  }
}

void RateRegulator::apply_draft(double sigma) {
  const double sigma_frames = sigma / config_.frame_bits;
  if (sigma > 0.0) {
    rate_ += config_.gi * config_.ru * sigma_frames;
  } else if (sigma < 0.0) {
    const double factor = std::max(1.0 - config_.max_decrease,
                                   1.0 + config_.gd * sigma_frames);
    rate_ *= factor;
  }
}

void RateRegulator::apply_qcn(double sigma) {
  if (sigma >= 0.0) return;  // QCN: negative feedback only
  // Quantize |sigma| (in frames) to the feedback field's resolution.
  const double sigma_frames = -sigma / config_.frame_bits;
  const double full_scale =
      static_cast<double>((1 << config_.qcn_feedback_bits) - 1);
  const double fb = std::min(
      full_scale, std::ceil(sigma_frames / config_.qcn_fb_scale * full_scale));
  if (fb <= 0.0) return;
  target_rate_ = rate_;  // remember where we were for fast recovery
  rate_ *= 1.0 - config_.max_decrease * fb / (full_scale + 1.0);
  recovery_cycles_ = 0;
}

void RateRegulator::self_increase() {
  if (config_.mode != FeedbackMode::QcnSelfIncrease) return;
  if (recovery_cycles_ < config_.qcn_fast_recovery_cycles) {
    rate_ = (rate_ + target_rate_) / 2.0;
    ++recovery_cycles_;
  } else {
    target_rate_ += config_.qcn_active_increase;
    rate_ = (rate_ + target_rate_) / 2.0;
  }
  ++counters_.self_increases;
  clamp();
  note_rate();
}

void RateRegulator::clamp() {
  rate_ = std::clamp(rate_, config_.min_rate, config_.max_rate);
}

void RateRegulator::note_rate() {
  counters_.min_rate_seen = std::min(counters_.min_rate_seen, rate_);
  counters_.max_rate_seen = std::max(counters_.max_rate_seen, rate_);
}

}  // namespace bcn::sim
