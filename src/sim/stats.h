// Measurement infrastructure for the packet simulator: counters plus
// fixed-interval time series of queue length and source rates.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ode/trajectory.h"
#include "sim/frame.h"
#include "sim/time.h"

namespace bcn::sim {

struct Counters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_delivered = 0;
  double bits_delivered = 0.0;
  std::uint64_t frames_sampled = 0;
  std::uint64_t bcn_positive = 0;
  std::uint64_t bcn_negative = 0;
  std::uint64_t pause_frames = 0;
};

struct TracePoint {
  SimTime t = 0;
  double queue_bits = 0.0;
  double aggregate_rate = 0.0;  // sum of regulator rates [bits/s]
};

class SimStats {
 public:
  Counters counters;

  void record(SimTime t, double queue_bits, double aggregate_rate) {
    trace_.push_back({t, queue_bits, aggregate_rate});
  }

  const std::vector<TracePoint>& trace() const { return trace_; }

  double max_queue() const;
  double min_queue_after(SimTime t) const;
  // Time-average queue over the trace (simple mean of uniform samples).
  double mean_queue() const;
  // Delivered throughput in bits/s over [0, horizon].
  double throughput(SimTime horizon) const;

  // Converts the trace to the fluid model's phase coordinates
  // x = q - q0, y = aggregate_rate - C for cross-validation.
  ode::Trajectory to_phase_trajectory(double q0, double capacity) const;

  // Per-flow accounting (filled by the switch on delivery).
  void add_delivered(SourceId source, double bits) {
    per_source_bits_[source] += bits;
  }
  const std::unordered_map<SourceId, double>& per_source_bits() const {
    return per_source_bits_;
  }

  // Jain fairness index over per-source delivered bits:
  // (sum x)^2 / (n sum x^2); 1.0 is perfectly fair, 1/n maximally unfair.
  // Returns 1.0 when nothing was delivered.
  double jain_fairness_index() const;

 private:
  std::vector<TracePoint> trace_;
  std::unordered_map<SourceId, double> per_source_bits_;
};

}  // namespace bcn::sim
