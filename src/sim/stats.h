// Measurement layer of the packet simulator.
//
// SimStats is the per-run observability hub: aggregate counters, the
// fixed-interval (queue, aggregate-rate) trace the phase-plane
// cross-validation consumes, per-flow / per-port timelines
// (obs::TimelineSet), the causal BCN/PAUSE event trace
// (obs::EventTrace), a sigma-value histogram, and per-source delivery
// accounting.  Everything exports deterministically: timelines and
// metrics in name order, per-source accounting sorted by SourceId.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "ode/trajectory.h"
#include "sim/frame.h"
#include "sim/time.h"

namespace bcn::sim {

struct Counters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_delivered = 0;
  double bits_delivered = 0.0;
  std::uint64_t frames_sampled = 0;
  std::uint64_t bcn_positive = 0;
  std::uint64_t bcn_negative = 0;
  std::uint64_t pause_frames = 0;
};

struct TracePoint {
  SimTime t = 0;
  double queue_bits = 0.0;
  double aggregate_rate = 0.0;  // sum of regulator rates [bits/s]
  // Cumulative delivered bits at the sample instant; lets throughput()
  // window deliveries instead of trusting a caller-supplied horizon.
  double bits_delivered = 0.0;
};

class SimStats {
 public:
  SimStats();

  Counters counters;

  void record(SimTime t, double queue_bits, double aggregate_rate) {
    trace_.push_back(
        {t, queue_bits, aggregate_rate, counters.bits_delivered});
  }

  const std::vector<TracePoint>& trace() const { return trace_; }

  double max_queue() const;
  // Minimum queue over samples at t' >= t; nullopt when no sample exists
  // after t (distinct from a genuinely drained queue, which returns 0.0).
  std::optional<double> min_queue_after(SimTime t) const;
  // Time-average queue over the trace (simple mean of uniform samples).
  double mean_queue() const;
  // Delivered throughput in bits/s over [0, horizon], windowed against
  // the recorded trace: the horizon is clamped to the trace span and the
  // delivered bits are read from the trace at that instant, so a horizon
  // longer than the run can no longer dilute (or inflate) the rate.
  // With no trace recorded the lifetime counters over `horizon` are the
  // only information available and are used as-is.
  double throughput(SimTime horizon) const;

  // Converts the trace to the fluid model's phase coordinates
  // x = q - q0, y = aggregate_rate - C for cross-validation.
  ode::Trajectory to_phase_trajectory(double q0, double capacity) const;

  // Per-flow accounting (filled by the switch on delivery).  Runs on the
  // per-frame fast path, so the store is a dense vector indexed by
  // SourceId rather than a hash map.
  void add_delivered(SourceId source, double bits) {
    if (source >= per_source_bits_.size()) {
      per_source_bits_.resize(source + 1, 0.0);
      per_source_seen_.resize(source + 1, 0);
    }
    per_source_bits_[source] += bits;
    per_source_seen_[source] = 1;
  }
  // Sources that delivered at least one frame (including zero-bit ones).
  std::size_t delivered_source_count() const;
  // Export-friendly view: (SourceId, bits) for every source that
  // delivered, sorted by SourceId.
  std::vector<std::pair<SourceId, double>> per_source_bits_sorted() const;

  // Jain fairness index over per-source delivered bits:
  // (sum x)^2 / (n sum x^2); 1.0 is perfectly fair, 1/n maximally unfair.
  // Returns 1.0 when nothing was delivered.
  double jain_fairness_index() const;

  // --- structured observability ----------------------------------------
  // Per-flow / per-port timelines (e.g. "flow.0003.rate_bps",
  // "port.core.queue_bits"), recorded by the network layers.
  obs::TimelineSet& timelines() { return timelines_; }
  const obs::TimelineSet& timelines() const { return timelines_; }

  // Causal BCN / PAUSE event trace (recorded by switches + regulators).
  obs::EventTrace& events() { return events_; }
  const obs::EventTrace& events() const { return events_; }

  // Sigma samples from the congestion point(s), bucketed by sign and
  // magnitude relative to q0 (bounds fixed at construction).
  void record_sigma(double sigma) { sigma_histogram_.record(sigma); }
  const obs::Histogram& sigma_histogram() const { return sigma_histogram_; }

  // Adds this run's metrics to `registry` under `prefix` ("sim." by
  // convention): every counter, queue/fairness gauges, per-flow delivered
  // bits (sorted), and the sigma histogram.  Intended to be called once
  // per run, right before the registry snapshot is written.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "sim.") const;

 private:
  std::vector<TracePoint> trace_;
  std::vector<double> per_source_bits_;   // indexed by SourceId
  std::vector<std::uint8_t> per_source_seen_;
  obs::TimelineSet timelines_;
  obs::EventTrace events_;
  obs::Histogram sigma_histogram_;
};

}  // namespace bcn::sim
