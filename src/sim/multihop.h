// The congestion-spreading scenario from the paper's introduction: PAUSE
// "can roll back from switch to switch, affecting flows that do not
// contribute to the congestion, but happen to share a link with flows
// that do".
//
// Topology (two hops):
//
//   culprits (N x 1 Gbps) --\                       /-- port A: 1 Gbps  (hot)
//   victim   (1 x 1 Gbps) ---> E1 --10 Gbps--> CORE
//                                                   \-- port B: 10 Gbps (cold)
//
// Culprit traffic exits through CORE's slow port A and congests it; the
// victim's traffic uses the uncongested port B.  With hop-by-hop PAUSE
// alone, port A pauses the E1->CORE link, E1's queue backs up, E1 pauses
// *all* sources -- the victim collapses with the culprits.  With BCN at
// port A, only the culprit sources are throttled and the victim keeps its
// full rate.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/monitor.h"
#include "sim/faults.h"
#include "sim/time.h"

namespace bcn::obs {
class MetricsRegistry;
}

namespace bcn::sim {

class SimStats;

// Port labels used in the observer's event trace and timelines.
inline constexpr std::uint32_t kMultihopEdgePort = 1;
inline constexpr std::uint32_t kMultihopHotPort = 2;
inline constexpr std::uint32_t kMultihopColdPort = 3;

struct MultihopConfig {
  int num_culprits = 8;
  double line_rate = 10e9;     // sources' links, E1->CORE, CORE port B
  double hot_rate = 1e9;       // CORE port A (the congested downlink)
  double offered_rate = 1e9;   // per-source offered load
  double frame_bits = 12000.0;
  SimTime propagation_delay = 500;  // per hop [ns]
  SimTime duration = 50 * kMillisecond;

  bool enable_pause = true;  // hop-by-hop 802.3x back-pressure
  bool enable_bcn = false;   // BCN congestion point on port A

  // Buffers / thresholds.
  double edge_buffer = 5e6;
  double core_buffer = 5e6;
  double pause_threshold_fraction = 0.5;  // of the buffer
  // BCN knobs for port A.
  double bcn_q0 = 0.3e6;
  double bcn_pm = 0.2;
  double bcn_w = 2.0;

  // Optional observability sink: when set, the run records per-port
  // queue timelines ("port.edge/hot/cold.queue_bits") and the BCN/PAUSE
  // event trace into this SimStats.
  SimStats* observer = nullptr;
  // When set, the run exports its scheduler gauges/counters (heap high
  // water, pool occupancy, cancels, ...) under "sim." before returning.
  obs::MetricsRegistry* metrics = nullptr;

  // Degraded-network description (sim/faults.h).  Reverse-path faults
  // apply to the hot port's BCN/PAUSE and the edge's upstream PAUSE;
  // data_drop and flap windows apply on the E1 -> CORE forward link.
  // Counters export as "fault.*" into `metrics` when set.
  FaultPlan faults;

  // Runtime invariant monitors (obs/monitor.h), attached to all three
  // ports for per-frame queue checks; the sampled monitors observe the
  // hot port (the congestion point), whose stalled deliveries are what
  // the PFC-deadlock watchdog is after.  Exports "monitor.*" into
  // `metrics` when set.
  obs::MonitorConfig monitors;
};

struct MultihopResult {
  double victim_throughput = 0.0;    // bits/s delivered via port B
  double culprit_throughput = 0.0;   // bits/s delivered via port A
  std::uint64_t core_drops = 0;
  std::uint64_t edge_drops = 0;
  std::uint64_t pauses_core_to_edge = 0;
  std::uint64_t pauses_edge_to_sources = 0;
  std::uint64_t bcn_messages = 0;
  double edge_peak_queue = 0.0;
  double hot_peak_queue = 0.0;
  // Simulator events dispatched over the run (throughput benchmarking).
  std::size_t events_executed = 0;
  // Injected-fault tally (all zero when the plan is unarmed).
  FaultCounters fault_counters;
};

// Builds, runs and tears down one victim scenario.
MultihopResult run_victim_scenario(const MultihopConfig& config);

}  // namespace bcn::sim
