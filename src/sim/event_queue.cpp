#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace bcn::sim {

// --- pool ----------------------------------------------------------------

std::uint32_t Simulator::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  ++slot.generation;  // stale every outstanding handle
  slot.heap_index = kSlotFree;
  slot.target = nullptr;
  if (slot.kind == EventKind::Callback && index < fns_.size()) {
    fns_[index] = nullptr;  // drop the closure allocation
  }
  free_.push_back(index);
}

std::int64_t Simulator::resolve(EventId id) const {
  if (id == kInvalidEvent) return -1;
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return -1;
  const auto index = static_cast<std::uint32_t>(slot_plus_one - 1);
  if (slots_[index].generation != static_cast<std::uint32_t>(id)) return -1;
  return index;
}

// --- indexed 4-ary heap --------------------------------------------------

void Simulator::sift_up(std::int32_t i) {
  const HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::int32_t parent = (i - 1) >> 2;
    if (!entry_less(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slots_[heap_[i].slot].heap_index = i;
    i = parent;
  }
  heap_[i] = moving;
  slots_[moving.slot].heap_index = i;
}

void Simulator::sift_down(std::int32_t i) {
  const HeapEntry moving = heap_[i];
  const auto n = static_cast<std::int32_t>(heap_.size());
  while (true) {
    const std::int32_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::int32_t best = first_child;
    const std::int32_t last_child = std::min(first_child + 4, n);
    for (std::int32_t c = first_child + 1; c < last_child; ++c) {
      if (entry_less(heap_[c], heap_[best])) best = c;
    }
    if (!entry_less(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    slots_[heap_[i].slot].heap_index = i;
    i = best;
  }
  heap_[i] = moving;
  slots_[moving.slot].heap_index = i;
}

void Simulator::heap_push(const HeapEntry& entry) {
  heap_.push_back(entry);
  slots_[entry.slot].heap_index = static_cast<std::int32_t>(heap_.size() - 1);
  sift_up(static_cast<std::int32_t>(heap_.size() - 1));
  heap_high_water_ = std::max(heap_high_water_, heap_.size());
}

void Simulator::heap_remove(std::int32_t heap_index) {
  const std::int32_t last = static_cast<std::int32_t>(heap_.size()) - 1;
  const std::uint32_t removed = heap_[heap_index].slot;
  if (heap_index != last) {
    heap_[heap_index] = heap_[last];
    slots_[heap_[heap_index].slot].heap_index = heap_index;
  }
  heap_.pop_back();
  if (heap_index != last) {
    // The swapped-in element may need to move either direction; after a
    // sift_down the follow-up sift_up is a no-op unless it stayed put.
    const std::uint32_t moved = heap_[heap_index].slot;
    sift_down(heap_index);
    sift_up(slots_[moved].heap_index);
  }
  slots_[removed].heap_index = kSlotFree;
}

// Specialized heap_remove(0) for the dispatch loop: the root needs no
// upward fixup.
void Simulator::pop_root() {
  const std::uint32_t removed = heap_[0].slot;
  const std::size_t last = heap_.size() - 1;
  if (last != 0) {
    heap_[0] = heap_[last];
    slots_[heap_[0].slot].heap_index = 0;
  }
  heap_.pop_back();
  if (last != 0) sift_down(0);
  slots_[removed].heap_index = kSlotFree;
}

// --- scheduling ----------------------------------------------------------

SimTime Simulator::clamp_deadline(SimTime when) {
  if (when >= now_) return when;
  // Rate-limited: a handful of warnings identifies the buggy timer without
  // drowning a long run; the limiter's count keeps the full tally.
  if (clamp_warnings_.allow()) {
    BCN_LOG_WARN(
        "sim: event scheduled %lld ns in the past clamped to now=%lld ns "
        "(occurrence %llu; see sim.schedule_clamped)",
        static_cast<long long>(now_ - when), static_cast<long long>(now_),
        static_cast<unsigned long long>(clamp_warnings_.count()));
  }
  return now_;
}

EventId Simulator::insert(SimTime when, std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  slot.when = clamp_deadline(when);
  slot.seq = next_seq_++;
  heap_push({make_key(slot.when, slot.seq), slot_index});
  return make_id(slot_index, slot.generation);
}

EventId Simulator::schedule_event(SimTime when, EventTarget* target,
                                  EventKind kind, std::uint32_t tag) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.target = target;
  slot.kind = kind;
  slot.tag = tag;
  return insert(when, index);
}

EventId Simulator::schedule_frame(SimTime when, EventTarget* target,
                                  std::uint32_t tag, const Frame& frame) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.target = target;
  slot.kind = EventKind::FrameArrival;
  slot.tag = tag;
  slot.payload.frame = frame;
  return insert(when, index);
}

EventId Simulator::schedule_bcn(SimTime when, EventTarget* target,
                                std::uint32_t tag, const BcnMessage& message) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.target = target;
  slot.kind = EventKind::BcnDelivery;
  slot.tag = tag;
  slot.payload.bcn = message;
  return insert(when, index);
}

EventId Simulator::schedule_pause(SimTime when, EventTarget* target,
                                  std::uint32_t tag, const PauseFrame& pause) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.target = target;
  slot.kind = EventKind::PauseDelivery;
  slot.tag = tag;
  slot.payload.pause = pause;
  return insert(when, index);
}

EventId Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.target = nullptr;
  slot.kind = EventKind::Callback;
  slot.tag = 0;
  if (fns_.size() <= index) fns_.resize(slots_.size());
  fns_[index] = std::move(fn);
  return insert(when, index);
}

void Simulator::cancel(EventId id) {
  const std::int64_t index = resolve(id);
  if (index < 0) return;  // stale or invalid: no residue
  Slot& slot = slots_[static_cast<std::uint32_t>(index)];
  if (slot.heap_index < 0) return;  // defensive; live slots are in the heap
  heap_remove(slot.heap_index);
  release_slot(static_cast<std::uint32_t>(index));
  ++cancelled_;
}

bool Simulator::reschedule(EventId id, SimTime when) {
  const std::int64_t index = resolve(id);
  if (index < 0) return false;
  Slot& slot = slots_[static_cast<std::uint32_t>(index)];
  slot.when = clamp_deadline(when);
  slot.seq = next_seq_++;  // rescheduling re-enters the FIFO order, as a
                           // cancel + fresh schedule would
  ++rescheduled_;
  if (slot.heap_index >= 0) {
    const std::int32_t at = slot.heap_index;
    heap_[at].key = make_key(slot.when, slot.seq);
    sift_down(at);
    sift_up(slots_[static_cast<std::uint32_t>(index)].heap_index);
  } else {
    // Defensive: live slots are always in the heap.
    heap_push({make_key(slot.when, slot.seq),
               static_cast<std::uint32_t>(index)});
  }
  return true;
}

EventId Simulator::arm(EventId id, SimTime when, EventTarget* target,
                       EventKind kind, std::uint32_t tag) {
  if (reschedule(id, when)) return id;
  return schedule_event(when, target, kind, tag);
}

// --- dispatch ------------------------------------------------------------

std::size_t Simulator::run_until(SimTime until) {
  // One span per drain batch: args carry the simulated horizon and the
  // number of events executed inside it.
  obs::TraceSpan span("sim.run_until", "until_ns",
                      static_cast<double>(until));
  std::size_t ran = 0;
  const unsigned __int128 limit = make_key(until, ~0ull);
  while (!heap_.empty()) {
    if (heap_[0].key > limit) break;
    const std::uint32_t top = heap_[0].slot;

    // Fire in place: the root entry stays in the heap while its handler
    // runs.  Anything the handler schedules gets a later (when, seq) key,
    // so the firing entry keeps the root spot; a handler that re-arms its
    // own timer turns the usual pop + push into one in-place sift.
    firing_slot_ = top;
    now_ = slots_[top].when;
    const std::uint64_t fired_seq = slots_[top].seq;
    const std::uint32_t fired_gen = slots_[top].generation;
    ++executed_;
    ++ran;

    if (slots_[top].kind == EventKind::Callback) {
      // Move the closure out so a handler that re-arms itself via
      // schedule_* cannot observe a half-dead slot; move it back if the
      // slot was not recycled from within (cancel + fresh schedule).
      std::function<void()> fn = std::move(fns_[top]);
      fn();
      if (slots_[top].generation == fired_gen) {
        fns_[top] = std::move(fn);
      }
    } else {
      // Stack copy of the dispatch view: handlers may schedule freely
      // (which can grow the slab and invalidate Slot references).  Only
      // the active payload member is copied.
      SimEvent event;
      event.kind = slots_[top].kind;
      event.tag = slots_[top].tag;
      event.id = make_id(top, fired_gen);
      switch (event.kind) {
        case EventKind::FrameArrival:
          event.payload.frame = slots_[top].payload.frame;
          break;
        case EventKind::BcnDelivery:
          event.payload.bcn = slots_[top].payload.bcn;
          break;
        case EventKind::PauseDelivery:
        case EventKind::PauseExpiry:
          event.payload.pause = slots_[top].payload.pause;
          break;
        default:
          break;
      }
      EventTarget* target = slots_[top].target;
      target->on_event(event);
    }

    firing_slot_ = -1;
    // Unless the handler re-armed (fresh seq) or cancelled (fresh
    // generation) the fired event, retire it now.
    if (slots_[top].generation == fired_gen && slots_[top].seq == fired_seq) {
      const std::int32_t at = slots_[top].heap_index;
      if (at == 0) {
        pop_root();
      } else {
        heap_remove(at);  // defensive: the root spot should be retained
      }
      release_slot(top);
    }
  }
  now_ = std::max(now_, until);
  span.arg("events", static_cast<double>(ran));
  span.arg("heap_hwm", static_cast<double>(heap_high_water_));
  return ran;
}

// --- metrics -------------------------------------------------------------

void Simulator::export_metrics(obs::MetricsRegistry& registry,
                               const std::string& prefix) const {
  registry.gauge(prefix + "heap_high_water")
      .set(static_cast<double>(heap_high_water_));
  registry.gauge(prefix + "pool_slots")
      .set(static_cast<double>(slots_.size()));
  registry.gauge(prefix + "pool_in_use")
      .set(static_cast<double>(slots_.size() - free_.size()));
  registry.counter(prefix + "events_executed").inc(executed_);
  registry.counter(prefix + "events_cancelled").inc(cancelled_);
  registry.counter(prefix + "events_rescheduled").inc(rescheduled_);
  registry.counter(prefix + "schedule_clamped").inc(clamp_warnings_.count());
}

}  // namespace bcn::sim
