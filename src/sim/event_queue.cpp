#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>

#include "obs/tracing.h"

namespace bcn::sim {

SimTime transmission_time(double bits, double rate_bps) {
  if (bits <= 0.0) return 0;
  if (rate_bps <= 0.0) return kSecond * 3600;  // effectively never
  const double ns = bits / rate_bps * 1e9;
  return static_cast<SimTime>(std::ceil(ns));
}

EventId Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id, std::move(fn)});
  ++live_;
  return id;
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  if (cancelled_.insert(id).second && live_ > 0) --live_;
}

std::size_t Simulator::run_until(SimTime until) {
  // One span per drain batch: args carry the simulated horizon and the
  // number of events executed inside it.
  obs::TraceSpan span("sim.run_until", "until_ns",
                      static_cast<double>(until));
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    --live_;
    now_ = ev.when;
    ++executed_;
    ++ran;
    ev.fn();
  }
  now_ = std::max(now_, until);
  span.arg("events", static_cast<double>(ran));
  return ran;
}

}  // namespace bcn::sim
