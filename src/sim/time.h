// Simulated time: signed 64-bit nanoseconds.
//
// Integer time makes event ordering exact and runs reproducible; at 100
// Gbps a minimum-size Ethernet frame still spans ~5 ns, so nanosecond
// resolution is comfortably below every physical time scale in a DCE.
#pragma once

#include <cmath>
#include <cstdint>

namespace bcn::sim {

using SimTime = std::int64_t;  // nanoseconds

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}

inline constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

// Transmission time of `bits` at `rate_bps`, rounded up so a positive
// payload never serializes in zero time.  Inline: this sits on the
// per-frame fast path of the packet simulator.
inline SimTime transmission_time(double bits, double rate_bps) {
  if (bits <= 0.0) return 0;
  if (rate_bps <= 0.0) return kSecond * 3600;  // effectively never
  const double ns = bits / rate_bps * 1e9;
  return static_cast<SimTime>(std::ceil(ns));
}

}  // namespace bcn::sim
