// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events and lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace bcn::sim {

// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `when` (clamped to >= now).  Events
  // scheduled for the same instant fire in scheduling order.
  EventId schedule_at(SimTime when, std::function<void()> fn);
  EventId schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Lazily cancels the event; a no-op if it already fired or is invalid.
  void cancel(EventId id);

  // Runs until the queue drains or simulated time exceeds `until`.
  // Returns the number of events executed.  Advances now() to `until`.
  std::size_t run_until(SimTime until);

  // True when no live events remain.
  bool idle() const { return live_ == 0; }

  std::size_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace bcn::sim
