// Discrete-event simulation core: typed pooled events on an indexed 4-ary
// min-heap with stable FIFO ordering for simultaneous events.
//
// Design (the simulator fast path):
//   * Event records live in a slab of pool slots recycled through a free
//     list, so steady-state simulation performs zero allocations; only
//     the legacy Callback kind (tests, one-off wiring) may allocate for
//     its closure.
//   * The pending set is a 4-ary min-heap of slot indices ordered by
//     (when, seq); each slot stores its heap position, so cancel and
//     reschedule are O(log n) in-place operations on live handles --
//     there is no tombstone set to grow without bound.
//   * Handles carry a generation: once an event fires or is cancelled its
//     slot's generation advances and the old handle goes stale.  cancel()
//     and reschedule() on a stale handle are cheap no-ops.
//   * Recurring timers re-arm their own slot via reschedule() (valid from
//     inside the handler), keeping one slot per timer for the lifetime of
//     the simulation instead of allocating a fresh event every tick.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/log.h"
#include "sim/event.h"
#include "sim/time.h"

namespace bcn::obs {
class MetricsRegistry;
}

namespace bcn::sim {

class Simulator {
 public:
  Simulator() = default;

  SimTime now() const { return now_; }

  // --- typed scheduling (the zero-allocation fast path) ------------------
  // All absolute times are clamped to >= now(); a strictly-past deadline
  // additionally counts into the sim.schedule_clamped metric and logs a
  // rate-limited warning (a past deadline means a mis-scheduled timer).
  // Events scheduled for the same instant fire in scheduling order.
  EventId schedule_event(SimTime when, EventTarget* target, EventKind kind,
                         std::uint32_t tag);
  EventId schedule_frame(SimTime when, EventTarget* target, std::uint32_t tag,
                         const Frame& frame);
  EventId schedule_bcn(SimTime when, EventTarget* target, std::uint32_t tag,
                       const BcnMessage& message);
  EventId schedule_pause(SimTime when, EventTarget* target, std::uint32_t tag,
                         const PauseFrame& pause);

  // --- legacy closure scheduling (tests / one-off wiring) ----------------
  EventId schedule_at(SimTime when, std::function<void()> fn);
  EventId schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a live event in place (O(log n) heap removal) and recycles its
  // slot.  A no-op on stale or invalid handles -- repeated cancel after
  // fire leaves no residue and the handle table stays compact.
  void cancel(EventId id);

  // Moves a live event to `when` (clamped to >= now) with a fresh FIFO
  // sequence number, exactly as if it had been cancelled and re-scheduled,
  // but reusing its slot.  Callable from inside the event's own handler to
  // re-arm a recurring timer.  Returns false on a stale/invalid handle.
  bool reschedule(EventId id, SimTime when);

  // reschedule-or-schedule: re-arms `id` when still valid, otherwise
  // schedules a fresh typed event; returns the live handle.  The common
  // idiom for timers that sometimes go idle (e.g. a server with an empty
  // queue).
  EventId arm(EventId id, SimTime when, EventTarget* target, EventKind kind,
              std::uint32_t tag);

  // Runs until the queue drains or simulated time exceeds `until`.
  // Returns the number of events executed.  Advances now() to `until`.
  std::size_t run_until(SimTime until);

  // True when no live events remain.  (The firing event stays in the heap
  // while its handler runs, so an empty heap means fully idle.)
  bool idle() const { return heap_.empty(); }

  // Deadline of the earliest pending event; only meaningful when not
  // idle().  The sharded engine's single-shard fast path peeks it to
  // jump over empty epochs (sim/shard/engine.cpp).
  SimTime next_event_time() const {
    return static_cast<SimTime>(
        static_cast<std::uint64_t>(heap_.front().key >> 64));
  }

  std::size_t executed() const { return executed_; }

  // --- introspection (tests, metrics) ------------------------------------
  std::size_t heap_size() const { return heap_.size(); }
  std::size_t heap_high_water() const { return heap_high_water_; }
  // Slots ever created (the pool's slab size) and slots currently free.
  std::size_t pool_slots() const { return slots_.size(); }
  std::size_t pool_free() const { return free_.size(); }
  std::uint64_t cancelled_count() const { return cancelled_; }
  std::uint64_t rescheduled_count() const { return rescheduled_; }
  std::uint64_t clamped_count() const { return clamp_warnings_.count(); }

  // Scheduler gauges/counters into `registry` under `prefix`:
  //   <prefix>heap_high_water, <prefix>pool_slots, <prefix>pool_in_use,
  //   <prefix>events_executed, <prefix>events_cancelled,
  //   <prefix>events_rescheduled, <prefix>schedule_clamped.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "sim.") const;

 private:
  static constexpr std::int32_t kSlotFree = -1;

  // Closures for the legacy Callback kind live in a side table indexed by
  // slot, so the hot typed-event slots stay lean and release never touches
  // std::function internals.
  struct Slot {
    SimTime when = 0;
    std::uint64_t seq = 0;
    EventTarget* target = nullptr;
    std::uint32_t generation = 1;  // advances when the slot is recycled
    std::int32_t heap_index = kSlotFree;
    EventKind kind = EventKind::Callback;
    std::uint32_t tag = 0;
    EventPayload payload;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }
  // Returns the slot index for a handle whose generation still matches,
  // or -1 for stale/invalid handles.
  std::int64_t resolve(EventId id) const;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  EventId insert(SimTime when, std::uint32_t slot_index);
  SimTime clamp_deadline(SimTime when);

  // Heap entries carry the ordering key alongside the slot index so sift
  // comparisons stay inside the contiguous heap array instead of
  // dereferencing 100+-byte pool slots.  The (when, seq) pair is packed
  // into one 128-bit integer -- when in the high half, seq in the low --
  // so the lexicographic order collapses to a single branchless compare.
  struct HeapEntry {
    unsigned __int128 key;
    std::uint32_t slot;
  };
  static unsigned __int128 make_key(SimTime when, std::uint64_t seq) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(when))
            << 64) |
           seq;
  }
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    return a.key < b.key;
  }
  void heap_push(const HeapEntry& entry);
  void heap_remove(std::int32_t heap_index);
  void pop_root();
  void sift_up(std::int32_t i);
  void sift_down(std::int32_t i);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t rescheduled_ = 0;
  // Counts every clamped deadline; allows the first few log lines.
  LogRateLimit clamp_warnings_{5};
  std::size_t heap_high_water_ = 0;
  std::int64_t firing_slot_ = -1;  // slot being dispatched, else -1

  std::vector<Slot> slots_;
  std::vector<std::function<void()>> fns_;  // Callback closures, by slot
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
};

// A precomputed forwarding hop: schedules its payload as a typed event to
// a fixed target after a fixed delay.  The scenario wiring builds these
// once at construction, replacing the per-frame std::function sender hops
// on the hot path with a direct schedule_* call.
class EventLink {
 public:
  EventLink() = default;
  EventLink(Simulator& sim, EventTarget* target, std::uint32_t tag,
            SimTime delay)
      : sim_(&sim), target_(target), tag_(tag), delay_(delay) {}

  explicit operator bool() const { return target_ != nullptr; }

  void send(const Frame& frame) const {
    sim_->schedule_frame(sim_->now() + delay_, target_, tag_, frame);
  }
  void send(const BcnMessage& message) const {
    sim_->schedule_bcn(sim_->now() + delay_, target_, tag_, message);
  }
  // Fault-injection hook: deliver with extra reverse-path delay on top of
  // the link's propagation delay (sim/faults.h).
  void send(const BcnMessage& message, SimTime extra_delay) const {
    sim_->schedule_bcn(sim_->now() + delay_ + extra_delay, target_, tag_,
                       message);
  }
  void send(const PauseFrame& pause) const {
    sim_->schedule_pause(sim_->now() + delay_, target_, tag_, pause);
  }

 private:
  Simulator* sim_ = nullptr;
  EventTarget* target_ = nullptr;
  std::uint32_t tag_ = 0;
  SimTime delay_ = 0;
};

}  // namespace bcn::sim
