// Pluggable congestion-control mechanisms: the packet facet.
//
// The counterpart of core/mechanism.h inside the packet simulator.  A
// PacketMechanism bundles the two policies of the sigma pipeline:
//
//   * the congestion-point facet: what feedback (if any) the switch
//     emits for a sampled frame -- negative/positive BCN, or an explicit
//     rate advertisement;
//   * the reaction-point facet: how a regulator applies an arriving
//     message to its rate, plus the optional source-driven self-increase
//     (QCN's recovery timer).
//
// CoreSwitch still owns sampling, sigma computation (eq. (1)), queueing
// and PAUSE; RateRegulator still owns clamping, association and
// counters.  Mechanisms only decide the feedback policy on both ends.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/mechanism.h"
#include "sim/frame.h"

namespace bcn::sim {

struct CoreSwitchConfig;
struct RegulatorConfig;

// The mechanism-owned slice of a regulator's state.
struct RegulatorState {
  double rate = 0.0;
  double target_rate = 0.0;  // QCN fast-recovery target
  int recovery_cycles = 0;
};

// What the switch hands the mechanism for one sampled frame.
struct SwitchSample {
  double sigma = 0.0;       // eq. (1) over the sampling interval
  double queue_bits = 0.0;
  double now_s = 0.0;
  const Frame* frame = nullptr;
  const CoreSwitchConfig* config = nullptr;
};

// What the switch should emit for that sample.
struct FeedbackDecision {
  enum class Kind : std::uint8_t { None, Negative, Positive, RateAdvert };
  Kind kind = Kind::None;
  double advertised_rate = -1.0;  // RateAdvert only
};

// What a regulator actually applied (drives RegulatorCounters).
enum class AppliedFeedback : std::uint8_t { None, Positive, Negative, RateAdvert };

class PacketMechanism {
 public:
  virtual ~PacketMechanism() = default;

  virtual const char* name() const = 0;

  // --- congestion-point facet ----------------------------------------------
  // Mechanisms that maintain switch-side state per arrival (FERA's
  // active-flow epochs, RCP's arrival-rate measurement) opt into the
  // per-frame hook; the common case skips the virtual call entirely.
  virtual bool wants_arrival_hook() const { return false; }
  virtual void on_arrival(const Frame& frame, double now_s) {
    (void)frame;
    (void)now_s;
  }
  virtual FeedbackDecision on_sample(const SwitchSample& sample) = 0;
  // Default for the draft's CPID-matching gate on positive feedback when a
  // scenario wires this mechanism (CoreSwitchConfig can still override).
  virtual bool positive_requires_rrt() const { return false; }

  // --- reaction-point facet ------------------------------------------------
  virtual void init_state(RegulatorState& state) const {
    state.target_rate = state.rate;
    state.recovery_cycles = 0;
  }
  virtual AppliedFeedback apply_feedback(RegulatorState& state,
                                         const RegulatorConfig& config,
                                         const BcnMessage& message,
                                         double dt_seconds) const = 0;
  // QCN-style mechanisms recover rate on a source-local timer.
  virtual bool has_self_increase() const { return false; }
  virtual void self_increase(RegulatorState& state,
                             const RegulatorConfig& config) const {
    (void)state;
    (void)config;
  }
  virtual bool in_fast_recovery(const RegulatorState& state) const {
    (void)state;
    return false;
  }
};

// The shared, stateless BCN (fluid-matched) mechanism every CoreSwitch /
// RateRegulator uses when constructed without an explicit one.
PacketMechanism& default_bcn_mechanism();

// Builds the packet facet by registry name ("bcn", "bcn-draft", "qcn",
// "rcp", "fera"); nullptr for unknown names.
std::unique_ptr<PacketMechanism> make_packet_mechanism(
    std::string_view name, const core::MechanismConfig& config = {});

}  // namespace bcn::sim
