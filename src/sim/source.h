// A traffic source behind its reaction-point rate regulator.
//
// The source is a saturating sender (it always has data, the parallel
// read/write pattern of cluster file systems the paper assumes) paced at
// the regulator's current rate; feedback messages adjust that rate, and
// 802.3x PAUSE frames suspend transmission entirely.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/frame.h"
#include "sim/rate_regulator.h"

namespace bcn::sim {

// What the application offers the regulator.
//   Saturating: always has data (the parallel read/write pattern of the
//     paper's Section III.A).
//   OnOff: deterministic on/off bursts -- active for on_time, silent for
//     off_time, repeating; models flow churn, which varies the effective
//     N the fluid model holds constant.
enum class TrafficPattern { Saturating, OnOff };

struct SourceConfig {
  SourceId id = 0;
  std::uint32_t dst = 0;  // destination carried in every frame
  double frame_bits = 12000.0;
  double initial_rate = 1e9;  // offered/paced rate at t = 0 [bits/s]
  SimTime start_at = 0;
  RegulatorConfig regulator;
  // Congestion-control mechanism for the regulator (sim/mechanism.h);
  // nullptr uses the shared BCN fluid-matched mechanism.  Not owned.
  const PacketMechanism* mechanism = nullptr;
  // Period of the self-increase recovery timer, armed only for mechanisms
  // with source-driven recovery (QCN; real QCN uses a byte counter -- a
  // timer is the simulator's deterministic equivalent).
  SimTime self_increase_period = 100 * kMicrosecond;

  TrafficPattern pattern = TrafficPattern::Saturating;
  SimTime on_time = 5 * kMillisecond;   // OnOff: burst length
  SimTime off_time = 5 * kMillisecond;  // OnOff: silence length
};

class Source : public EventTarget {
 public:
  using FrameSender = std::function<void(const Frame&)>;

  Source(Simulator& sim, SourceConfig config);

  // Begins the pacing loop; frames are handed to `sender` (the network
  // layer adds propagation delay and delivers to the switch).
  void start(FrameSender sender);

  // Fast-path variant: frames go out over a precomputed typed-event link,
  // optionally bumping `sent_counter` at send time (the network's
  // frames_sent accounting), with no std::function hop per frame.
  void start(const EventLink& link, std::uint64_t* sent_counter = nullptr);

  void on_bcn(const BcnMessage& message);
  void on_pause(const PauseFrame& pause);

  // Typed-event dispatch: the pacing token and the self-increase tick.
  void on_event(const SimEvent& event) override;

  SourceId id() const { return config_.id; }
  double rate() const { return regulator_.rate(); }
  const RateRegulator& regulator() const { return regulator_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  // True while an 802.3x PAUSE holds this source's transmissions.
  bool is_paused(SimTime now) const { return now < paused_until_; }

 private:
  // Timer tags carried in this source's typed events.
  static constexpr std::uint32_t kTagSend = 0;
  static constexpr std::uint32_t kTagSelfIncrease = 1;

  void send_frame();
  void schedule_next(SimTime earliest);
  void repace();            // re-pace the pending send under the current rate
  void self_increase_tick();  // periodic recovery (QCN-style mechanisms)
  void arm_self_increase();
  // The inter-frame gap depends only on the regulator rate, which changes
  // orders of magnitude less often than frames are sent; cache it so the
  // per-frame path avoids a floating-point divide.
  void update_gap() {
    gap_ = transmission_time(config_.frame_bits, regulator_.rate());
  }

  Simulator& sim_;
  SourceConfig config_;
  RateRegulator regulator_;
  FrameSender sender_;
  EventLink link_;
  std::uint64_t* sent_counter_ = nullptr;
  // The pacing timer's slot is reused for the lifetime of the source:
  // send_frame re-arms it, repace/on_pause move it in place.
  EventId send_timer_ = kInvalidEvent;
  EventId self_increase_timer_ = kInvalidEvent;
  SimTime gap_ = 0;  // cached transmission_time(frame_bits, rate)
  SimTime last_send_ = 0;
  SimTime paused_until_ = 0;
  std::uint64_t frames_sent_ = 0;
};

}  // namespace bcn::sim
