// The core-switch congestion point (paper Fig. 1): a drop-tail FIFO queue
// draining at the bottleneck capacity, frame sampling every 1/pm arrivals,
// sigma computation per eq. (1), BCN message generation, and 802.3x PAUSE
// when the queue exceeds the severe-congestion threshold qsc.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/frame.h"
#include "sim/stats.h"

namespace bcn::sim {

struct CoreSwitchConfig {
  CongestionPointId cpid = 1;
  double capacity = 10e9;     // C [bits/s]
  double buffer_bits = 5e6;   // B
  double q0 = 2.5e6;          // reference queue
  double qsc = 4.5e6;         // PAUSE threshold
  double w = 2.0;             // sigma weight, eq. (1)
  double pm = 0.01;           // sampling probability (deterministic 1/pm)
  bool enable_pause = true;
  SimTime pause_duration = 3355;  // 512-bit quanta x 65535 at 10 Gbps [ns]
  // Draft semantics: positive BCN only reaches sources already associated
  // (tagged) with this congestion point.  The fluid model of the paper
  // assumes positive feedback reaches every source, so the fluid-matched
  // cross-validation runs disable this gate.
  bool positive_requires_rrt = true;
  // QCN semantics: the network sends only negative feedback.
  bool suppress_positive = false;
  // FERA semantics: advertise an explicit allowed rate on every sample,
  // R_adv = (C / active_flows) * (1 - alpha * (q - q0)/q0), instead of
  // sigma-sign feedback.
  bool fera_mode = false;
  double fera_alpha = 0.5;
  // Active flows are estimated as the distinct sources seen per epoch.
  std::uint64_t fera_epoch_frames = 1000;
  // Sampling discipline: the paper models a *deterministic* 1/pm arrival
  // count; the original ECM proposal samples each arrival independently
  // with probability pm.  Both are supported; random sampling is seeded
  // and fully reproducible.
  bool random_sampling = false;
  std::uint64_t sampling_seed = 0x5eed;
};

class CoreSwitch {
 public:
  using BcnSender = std::function<void(const BcnMessage&)>;
  using PauseSender = std::function<void(const PauseFrame&)>;
  using FrameSink = std::function<void(const Frame&)>;

  CoreSwitch(Simulator& sim, CoreSwitchConfig config, SimStats& stats);

  // Downstream hop for frames completing service; unset = frames
  // terminate here (single-bottleneck topology).
  void set_sink(FrameSink sink) { sink_ = std::move(sink); }

  // Frame arrival from the fabric.  Samples, possibly emits BCN/PAUSE via
  // the callbacks, then enqueues or drops.
  void on_frame(const Frame& frame);

  void set_bcn_sender(BcnSender sender) { send_bcn_ = std::move(sender); }
  void set_pause_sender(PauseSender sender) { send_pause_ = std::move(sender); }

  double queue_bits() const { return queue_bits_; }
  const CoreSwitchConfig& config() const { return config_; }

 private:
  void maybe_sample(const Frame& frame);
  void maybe_pause();
  void start_service();
  void finish_service();

  Simulator& sim_;
  CoreSwitchConfig config_;
  SimStats& stats_;
  BcnSender send_bcn_;
  PauseSender send_pause_;
  FrameSink sink_;

  std::deque<Frame> queue_;
  double queue_bits_ = 0.0;
  bool serving_ = false;

  std::uint64_t arrivals_since_sample_ = 0;
  std::uint64_t sample_every_ = 100;  // round(1/pm)
  double queue_at_last_sample_ = 0.0;
  SimTime pause_cooldown_until_ = 0;

  // FERA active-flow estimation.
  std::unordered_set<SourceId> epoch_sources_;
  std::uint64_t epoch_arrivals_ = 0;
  std::size_t active_flow_estimate_ = 1;

  Rng sampling_rng_{0x5eed};
};

}  // namespace bcn::sim
