// The core-switch congestion point (paper Fig. 1): a drop-tail FIFO queue
// draining at the bottleneck capacity, frame sampling every 1/pm arrivals,
// sigma computation per eq. (1), and 802.3x PAUSE when the queue exceeds
// the severe-congestion threshold qsc.
//
// What feedback a sampled frame triggers is the attached congestion-
// control mechanism's decision (sim/mechanism.h): sigma-sign BCN
// messages for bcn/bcn-draft, negative-only for qcn, an explicit rate
// advertisement for fera/rcp.  The switch owns the plant (queue, drain,
// sampling, PAUSE); the mechanism owns the feedback policy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/rng.h"
#include "obs/monitor.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/frame.h"
#include "sim/mechanism.h"
#include "sim/stats.h"

namespace bcn::sim {

struct CoreSwitchConfig {
  CongestionPointId cpid = 1;
  double capacity = 10e9;     // C [bits/s]
  double buffer_bits = 5e6;   // B
  double q0 = 2.5e6;          // reference queue
  double qsc = 4.5e6;         // PAUSE threshold
  double w = 2.0;             // sigma weight, eq. (1)
  double pm = 0.01;           // sampling probability (deterministic 1/pm)
  bool enable_pause = true;
  SimTime pause_duration = 3355;  // 512-bit quanta x 65535 at 10 Gbps [ns]
  // Draft semantics: positive BCN only reaches sources already associated
  // (tagged) with this congestion point.  The fluid model of the paper
  // assumes positive feedback reaches every source, so mechanisms doing
  // fluid-matched cross-validation disable this gate (the Network wiring
  // sets it from PacketMechanism::positive_requires_rrt()).
  bool positive_requires_rrt = true;
  // Sampling discipline: the paper models a *deterministic* 1/pm arrival
  // count; the original ECM proposal samples each arrival independently
  // with probability pm.  Both are supported; random sampling is seeded
  // and fully reproducible.
  bool random_sampling = false;
  std::uint64_t sampling_seed = 0x5eed;
};

class CoreSwitch : public EventTarget {
 public:
  using BcnSender = std::function<void(const BcnMessage&)>;
  using PauseSender = std::function<void(const PauseFrame&)>;
  using FrameSink = std::function<void(const Frame&)>;

  CoreSwitch(Simulator& sim, CoreSwitchConfig config, SimStats& stats);

  // Typed-event dispatch: the service-completion timer.
  void on_event(const SimEvent& event) override;

  // Downstream hop for frames completing service; unset = frames
  // terminate here.  Switches compose into chains (multihop.cpp) or any
  // other wiring; generated datacenter fabrics live in sim/shard.
  void set_sink(FrameSink sink) { sink_ = std::move(sink); }
  void set_sink(const EventLink& link) { sink_link_ = link; }

  // Frame arrival from the fabric.  Samples, possibly emits feedback /
  // PAUSE via the callbacks, then enqueues or drops.
  void on_frame(const Frame& frame);

  // Each sender accepts either a std::function (tests, ad-hoc wiring) or
  // an EventLink (the scenarios' zero-closure fast path); a set link wins.
  void set_bcn_sender(BcnSender sender) { send_bcn_ = std::move(sender); }
  void set_bcn_sender(const EventLink& link) { bcn_link_ = link; }
  void set_pause_sender(PauseSender sender) { send_pause_ = std::move(sender); }
  void set_pause_sender(const EventLink& link) { pause_link_ = link; }

  // Congestion-control mechanism driving feedback generation; defaults to
  // the shared BCN fluid-matched mechanism.  Not owned.
  void set_mechanism(PacketMechanism* mechanism) {
    mech_a_ = mechanism;
    hook_a_ = mechanism->wants_arrival_hook();
  }
  // Heterogeneous competition: sources with id >= first_b are handled by
  // `mechanism` instead of the primary one.
  void set_mechanism_split(PacketMechanism* mechanism, SourceId first_b) {
    mech_b_ = mechanism;
    hook_b_ = mechanism->wants_arrival_hook();
    first_b_ = first_b;
  }

  // Optional reverse-path fault injector (sim/faults.h): feedback drop /
  // delay / duplication and PAUSE loss are decided at emission time.
  // Scenarios only attach an injector when the plan is armed, so the
  // lossless path stays untouched.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Optional runtime invariant monitor (obs/monitor.h): per-frame queue
  // occupancy checks on enqueue/depart.  Like the fault injector,
  // scenarios only attach an armed monitor, so the default path costs
  // one null test per frame.
  void set_monitor(obs::RunMonitor* monitor) { monitor_ = monitor; }

  double queue_bits() const { return queue_bits_; }
  const CoreSwitchConfig& config() const { return config_; }

 private:
  void maybe_sample(const Frame& frame);
  void maybe_pause();
  void start_service();
  void finish_service();
  void emit_bcn(const BcnMessage& message);

  bool has_bcn_sender() const { return bcn_link_ || send_bcn_; }

  // One-entry service-time memo: the drain rate is fixed and frame sizes
  // are usually uniform, so the per-departure floating-point divide
  // collapses to a compare.
  SimTime service_time(double bits) {
    if (bits != service_bits_) {
      service_bits_ = bits;
      service_gap_ = transmission_time(bits, config_.capacity);
    }
    return service_gap_;
  }

  Simulator& sim_;
  CoreSwitchConfig config_;
  SimStats& stats_;
  BcnSender send_bcn_;
  PauseSender send_pause_;
  FrameSink sink_;
  EventLink bcn_link_;
  EventLink pause_link_;
  EventLink sink_link_;
  FaultInjector* faults_ = nullptr;
  obs::RunMonitor* monitor_ = nullptr;
  // Primary mechanism (all sources) plus the optional competition split;
  // the arrival-hook flags are cached so the per-frame fast path skips
  // the virtual call for mechanisms without switch-side state.
  PacketMechanism* mech_a_;
  PacketMechanism* mech_b_ = nullptr;
  bool hook_a_ = false;
  bool hook_b_ = false;
  SourceId first_b_ = ~SourceId{0};

  std::deque<Frame> queue_;
  double queue_bits_ = 0.0;
  double service_bits_ = -1.0;
  SimTime service_gap_ = 0;
  bool serving_ = false;
  // Service-completion timer; its slot is re-armed back-to-back while the
  // queue stays busy and goes stale when the queue drains.
  EventId depart_timer_ = kInvalidEvent;

  std::uint64_t arrivals_since_sample_ = 0;
  std::uint64_t sample_every_ = 100;  // round(1/pm)
  double queue_at_last_sample_ = 0.0;
  SimTime pause_cooldown_until_ = 0;

  Rng sampling_rng_{0x5eed};
};

}  // namespace bcn::sim
