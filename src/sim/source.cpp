#include "sim/source.h"

#include <algorithm>

namespace bcn::sim {

Source::Source(Simulator& sim, SourceConfig config)
    : sim_(sim),
      config_(config),
      regulator_(config.regulator, config.initial_rate, config.start_at) {}

void Source::start(FrameSender sender) {
  sender_ = std::move(sender);
  schedule_next(config_.start_at);
  if (config_.regulator.mode == FeedbackMode::QcnSelfIncrease) {
    sim_.schedule_at(config_.start_at + config_.qcn_increase_period,
                     [this] { qcn_tick(); });
  }
}

void Source::on_bcn(const BcnMessage& message) {
  const double old_rate = regulator_.rate();
  regulator_.on_bcn(message, sim_.now());
  if (regulator_.rate() != old_rate) repace();
}

void Source::repace() {
  if (pending_send_ == kInvalidEvent) return;
  sim_.cancel(pending_send_);
  pending_send_ = kInvalidEvent;
  const SimTime gap = transmission_time(config_.frame_bits, regulator_.rate());
  schedule_next(last_send_ + gap);
}

void Source::qcn_tick() {
  const double old_rate = regulator_.rate();
  regulator_.self_increase();
  if (regulator_.rate() != old_rate) repace();
  sim_.schedule_after(config_.qcn_increase_period, [this] { qcn_tick(); });
}

void Source::on_pause(const PauseFrame& pause) {
  paused_until_ = std::max(paused_until_, sim_.now() + pause.duration);
  if (pending_send_ != kInvalidEvent) {
    sim_.cancel(pending_send_);
    pending_send_ = kInvalidEvent;
    schedule_next(paused_until_);
  }
}

void Source::schedule_next(SimTime earliest) {
  const SimTime when = std::max({earliest, sim_.now(), paused_until_});
  pending_send_ = sim_.schedule_at(when, [this] { send_frame(); });
}

void Source::send_frame() {
  pending_send_ = kInvalidEvent;
  if (sim_.now() < paused_until_) {
    schedule_next(paused_until_);
    return;
  }
  if (config_.pattern == TrafficPattern::OnOff) {
    const SimTime period = config_.on_time + config_.off_time;
    const SimTime phase = (sim_.now() - config_.start_at) % period;
    if (phase >= config_.on_time) {
      // Silent window: resume at the start of the next burst.
      schedule_next(sim_.now() + (period - phase));
      return;
    }
  }
  Frame frame;
  frame.source = config_.id;
  frame.dst = config_.dst;
  frame.size_bits = config_.frame_bits;
  frame.seq = frames_sent_++;
  frame.has_rrt = regulator_.is_associated();
  frame.rrt_cpid = regulator_.cpid();
  frame.sent_at = sim_.now();
  last_send_ = sim_.now();
  if (sender_) sender_(frame);
  const SimTime gap = transmission_time(config_.frame_bits, regulator_.rate());
  schedule_next(last_send_ + gap);
}

}  // namespace bcn::sim
