#include "sim/source.h"

#include <algorithm>

namespace bcn::sim {

Source::Source(Simulator& sim, SourceConfig config)
    : sim_(sim),
      config_(config),
      regulator_(config.regulator, config.initial_rate, config.start_at,
                 config.mechanism) {
  update_gap();
}

void Source::start(FrameSender sender) {
  sender_ = std::move(sender);
  schedule_next(config_.start_at);
  arm_self_increase();
}

void Source::start(const EventLink& link, std::uint64_t* sent_counter) {
  link_ = link;
  sent_counter_ = sent_counter;
  schedule_next(config_.start_at);
  arm_self_increase();
}

void Source::arm_self_increase() {
  if (!regulator_.mechanism().has_self_increase()) return;
  self_increase_timer_ = sim_.schedule_event(
      config_.start_at + config_.self_increase_period, this, EventKind::Tick,
      kTagSelfIncrease);
}

void Source::on_event(const SimEvent& event) {
  if (event.tag == kTagSend) {
    send_frame();
  } else {
    self_increase_tick();
  }
}

void Source::on_bcn(const BcnMessage& message) {
  const double old_rate = regulator_.rate();
  regulator_.on_bcn(message, sim_.now());
  if (regulator_.rate() != old_rate) {
    update_gap();
    repace();
  }
}

void Source::repace() {
  if (send_timer_ == kInvalidEvent) return;
  schedule_next(last_send_ + gap_);
}

void Source::self_increase_tick() {
  const double old_rate = regulator_.rate();
  regulator_.self_increase();
  if (regulator_.rate() != old_rate) {
    update_gap();
    repace();
  }
  // Re-arm the tick's own slot instead of scheduling a fresh event.
  sim_.reschedule(self_increase_timer_,
                  sim_.now() + config_.self_increase_period);
}

void Source::on_pause(const PauseFrame& pause) {
  paused_until_ = std::max(paused_until_, sim_.now() + pause.duration);
  if (send_timer_ != kInvalidEvent) schedule_next(paused_until_);
}

void Source::schedule_next(SimTime earliest) {
  const SimTime when = std::max({earliest, sim_.now(), paused_until_});
  send_timer_ = sim_.arm(send_timer_, when, this, EventKind::SourceToken,
                         kTagSend);
}

void Source::send_frame() {
  if (sim_.now() < paused_until_) {
    schedule_next(paused_until_);
    return;
  }
  if (config_.pattern == TrafficPattern::OnOff) {
    const SimTime period = config_.on_time + config_.off_time;
    const SimTime phase = (sim_.now() - config_.start_at) % period;
    if (phase >= config_.on_time) {
      // Silent window: resume at the start of the next burst.
      schedule_next(sim_.now() + (period - phase));
      return;
    }
  }
  Frame frame;
  frame.source = config_.id;
  frame.dst = config_.dst;
  frame.size_bits = config_.frame_bits;
  frame.seq = frames_sent_++;
  frame.has_rrt = regulator_.is_associated();
  frame.rrt_cpid = regulator_.cpid();
  frame.sent_at = sim_.now();
  last_send_ = sim_.now();
  if (link_) {
    if (sent_counter_) ++*sent_counter_;
    link_.send(frame);
  } else if (sender_) {
    sender_(frame);
  }
  schedule_next(last_send_ + gap_);
}

}  // namespace bcn::sim
