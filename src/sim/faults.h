// Deterministic fault injection for the packet simulator.
//
// Every mechanism's fluid facet (core/mechanism.h) assumes its feedback
// -- sigma-sign BCN, quantized QCN decreases, explicit rate adverts --
// always reaches the rate regulator; a real DCE fabric loses, delays,
// duplicates and reorders notification frames on the reverse path, loses
// data and PAUSE frames, and flaps links.  A FaultPlan describes such a
// degraded
// network; per-entity FaultInjectors apply it at the injection points
// (the congestion points' reverse-path transmitters and the scenario
// hubs' forward links).
//
// Determinism contract:
//   * Fault randomness is seeded independently of the traffic RNG
//     (FaultPlan::seed, default 0xfa17), so the same plan produces the
//     same fault schedule regardless of the scenario's own sampling
//     seed, and a fault schedule is reproducible across scenarios.
//   * Each (entity, fault-class) pair draws from its own RNG lane, so
//     enabling one fault class never perturbs another class's schedule,
//     and one entity's faults never perturb another entity's.
//   * A fault class with probability zero (and an empty flap list) never
//     consumes randomness and never schedules events: an all-zero
//     FaultPlan is a true no-op and the lossless run's trajectory digest
//     is byte-identical to a build without fault wiring
//     (FaultsTest.ZeroPlanMatchesPinnedDeterminismDigest).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "sim/frame.h"
#include "sim/time.h"

namespace bcn::obs {
class EventTrace;
class MetricsRegistry;
}  // namespace bcn::obs

namespace bcn::sim {

// One timed link-down window: the link is dead over [down_at, up_at).
struct LinkFlapWindow {
  SimTime down_at = 0;
  SimTime up_at = 0;
};

// The full degraded-network description.  All probabilities are per-unit
// (frame/message) Bernoulli draws in [0, 1]; zero disables the class.
struct FaultPlan {
  // Reverse path: BCN notification frames from a congestion point to its
  // reaction points.
  double bcn_drop_p = 0.0;       // notification lost
  double bcn_dup_p = 0.0;        // notification duplicated
  double bcn_delay_p = 0.0;      // notification delayed by bcn_delay
  SimTime bcn_delay = 0;         // extra reverse-path delay when selected
  // Forward path: data-frame loss on the injected link.
  double data_drop_p = 0.0;
  // Reverse path: 802.3x PAUSE frame loss.
  double pause_drop_p = 0.0;
  // Timed link down/up flaps on the injected forward link; frames
  // arriving during a window are lost (in-flight at the cut or sent into
  // the dead link -- both discard at delivery, so no event is ever
  // cancelled and no tombstone can accumulate).  Windows must be
  // disjoint and sorted (the parser enforces this).
  std::vector<LinkFlapWindow> flaps;
  // Fault RNG seed, independent of every traffic/sampling seed.
  std::uint64_t seed = 0xfa17;

  // True when any fault class can fire.
  bool armed() const {
    return bcn_drop_p > 0.0 || bcn_dup_p > 0.0 || bcn_delay_p > 0.0 ||
           data_drop_p > 0.0 || pause_drop_p > 0.0 || !flaps.empty();
  }
};

// Parses the --faults / BCN_FAULTS spec grammar:
//
//   spec     := entry ("," entry)*
//   entry    := "bcn_drop=" P | "bcn_dup=" P | "bcn_delay=" P ":" DUR
//             | "data_drop=" P | "pause_drop=" P
//             | "flap=" DUR "+" DUR ("/" DUR "+" DUR)*   (down-at + hold)
//             | "seed=" N
//   P        := probability in [0, 1]
//   DUR      := number with unit suffix ns | us | ms | s   (e.g. 100us)
//
// Examples:
//   bcn_drop=0.2
//   bcn_drop=0.1,bcn_delay=0.3:100us,seed=7
//   data_drop=0.01,flap=10ms+2ms/30ms+2ms
//
// Returns nullopt and fills *error on a malformed spec (unknown key,
// out-of-range probability, bad duration, overlapping flap windows).
std::optional<FaultPlan> parse_fault_plan(const std::string& spec,
                                          std::string* error = nullptr);

// One-paragraph grammar summary for tool usage messages.
const char* fault_plan_usage();

// Compact "key=value,..." rendering of the non-default fields (the
// inverse of parse_fault_plan, for logs and artifacts).
std::string fault_plan_summary(const FaultPlan& plan);

// Aggregate fault tally for a run; scenarios own one and share it across
// their injectors, then export it as fault.* metrics.
struct FaultCounters {
  std::uint64_t bcn_dropped = 0;
  std::uint64_t bcn_duplicated = 0;
  std::uint64_t bcn_delayed = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t pause_dropped = 0;
  std::uint64_t link_flaps = 0;    // down transitions observed
  std::uint64_t flap_dropped = 0;  // frames lost to a down link
};

// Publishes the counters into `registry`:
//   <prefix>bcn_dropped, <prefix>bcn_duplicated, <prefix>bcn_delayed,
//   <prefix>data_dropped, <prefix>pause_dropped, <prefix>link_flaps,
//   <prefix>flap_dropped.
void export_fault_metrics(const FaultCounters& counters,
                          obs::MetricsRegistry& registry,
                          const std::string& prefix = "fault.");

// Per-entity fault decision maker.  An entity is one injection point (a
// congestion point's reverse-path transmitter, a scenario hub's forward
// link); `entity` keys the RNG lanes and labels trace events.  All
// decision methods are deterministic functions of (plan, entity, call
// sequence) only.  A default-constructed injector is disarmed and every
// decision is a cheap no-op.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultPlan& plan, std::uint32_t entity,
                FaultCounters* counters, obs::EventTrace* trace = nullptr);

  bool armed() const { return plan_.armed(); }
  const FaultPlan& plan() const { return plan_; }

  // Reverse-path decisions, one call per emitted BCN notification.  The
  // drop lane sees every emission; the delay/duplicate lanes only see
  // survivors, so each lane's schedule is a pure function of its own
  // event index.
  bool drop_bcn(SimTime now, SourceId flow);
  // Extra reverse-path delay for this notification (0 = on time).
  SimTime bcn_extra_delay(SimTime now, SourceId flow);
  bool duplicate_bcn(SimTime now, SourceId flow);

  // Reverse-path PAUSE loss, one call per emitted PAUSE frame.
  bool drop_pause(SimTime now);

  // Forward-link decisions, one call per delivered data frame.  Check
  // cut_by_flap first: a frame lost to a dead link must not consume a
  // data-drop draw.
  bool cut_by_flap(SimTime now, SourceId flow);
  bool drop_data(SimTime now, SourceId flow);

  // True while `now` falls inside a flap window (no counting, no RNG).
  bool link_down(SimTime now) const;

 private:
  void note_drop(const char* what);

  FaultPlan plan_;
  std::uint32_t entity_ = 0;
  FaultCounters* counters_ = nullptr;
  obs::EventTrace* trace_ = nullptr;
  LogRateLimit drop_warnings_{3};
  Rng bcn_drop_rng_;
  Rng bcn_dup_rng_;
  Rng bcn_delay_rng_;
  Rng data_rng_;
  Rng pause_rng_;
};

}  // namespace bcn::sim
