#include "sim/faults.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/format.h"
#include "common/log.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace bcn::sim {
namespace {

// Distinct RNG lane per (seed, entity, fault class); splitmix64 inside
// Rng finishes the mixing, so a simple odd-multiplier combine suffices.
std::uint64_t lane_seed(std::uint64_t seed, std::uint32_t entity,
                        std::uint32_t lane) {
  std::uint64_t h = seed;
  h ^= (static_cast<std::uint64_t>(entity) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<std::uint64_t>(lane) + 1) * 0xbf58476d1ce4e5b9ULL;
  return h;
}

bool set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

// "0.25" -> probability; rejects anything outside [0, 1].
bool parse_probability(const std::string& text, double* out,
                       std::string* error) {
  char extra = 0;
  if (std::sscanf(text.c_str(), "%lf%c", out, &extra) != 1) {
    return set_error(error, "'" + text + "' is not a number");
  }
  if (!(*out >= 0.0 && *out <= 1.0)) {
    return set_error(error,
                     "probability '" + text + "' outside [0, 1]");
  }
  return true;
}

// "100us" / "2.5ms" / "750ns" / "1s" -> nanoseconds.
bool parse_duration(const std::string& text, SimTime* out,
                    std::string* error) {
  double value = 0.0;
  char unit[8] = {0};
  if (std::sscanf(text.c_str(), "%lf%7s", &value, unit) != 2 ||
      value < 0.0) {
    return set_error(error, "bad duration '" + text +
                                "' (want <number><ns|us|ms|s>)");
  }
  const std::string u = unit;
  double scale = 0.0;
  if (u == "ns") scale = 1.0;
  else if (u == "us") scale = 1e3;
  else if (u == "ms") scale = 1e6;
  else if (u == "s") scale = 1e9;
  else {
    return set_error(error, "bad duration unit '" + u +
                                "' in '" + text + "' (want ns|us|ms|s)");
  }
  *out = static_cast<SimTime>(std::llround(value * scale));
  return true;
}

// "10ms+2ms/30ms+2ms" -> down/up windows (down-at + hold time each).
bool parse_flaps(const std::string& text, std::vector<LinkFlapWindow>* out,
                 std::string* error) {
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t slash = text.find('/', start);
    const std::string window =
        text.substr(start, slash == std::string::npos ? std::string::npos
                                                      : slash - start);
    const std::size_t plus = window.find('+');
    if (plus == std::string::npos) {
      return set_error(error, "bad flap window '" + window +
                                  "' (want <down-at>+<hold>)");
    }
    LinkFlapWindow w;
    SimTime hold = 0;
    if (!parse_duration(window.substr(0, plus), &w.down_at, error) ||
        !parse_duration(window.substr(plus + 1), &hold, error)) {
      return false;
    }
    if (hold <= 0) {
      return set_error(error, "flap hold must be positive in '" + window +
                                  "'");
    }
    w.up_at = w.down_at + hold;
    out->push_back(w);
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  std::sort(out->begin(), out->end(),
            [](const LinkFlapWindow& a, const LinkFlapWindow& b) {
              return a.down_at < b.down_at;
            });
  for (std::size_t i = 1; i < out->size(); ++i) {
    if ((*out)[i].down_at < (*out)[i - 1].up_at) {
      return set_error(error, "flap windows overlap");
    }
  }
  return true;
}

}  // namespace

std::optional<FaultPlan> parse_fault_plan(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  if (spec.empty()) {
    set_error(error, "empty fault spec");
    return std::nullopt;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string entry = spec.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    // Tolerate stray spaces around entries ("bcn_drop=0.1, seed=7").
    while (!entry.empty() && std::isspace(entry.front())) entry.erase(0, 1);
    while (!entry.empty() && std::isspace(entry.back())) entry.pop_back();
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == std::string::npos || eq == 0) {
      set_error(error, "bad entry '" + entry + "' (want key=value)");
      return std::nullopt;
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    bool ok = true;
    if (key == "bcn_drop") {
      ok = parse_probability(value, &plan.bcn_drop_p, error);
    } else if (key == "bcn_dup") {
      ok = parse_probability(value, &plan.bcn_dup_p, error);
    } else if (key == "bcn_delay") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        ok = set_error(error, "bcn_delay wants <prob>:<duration>, got '" +
                                  value + "'");
      } else {
        ok = parse_probability(value.substr(0, colon), &plan.bcn_delay_p,
                               error) &&
             parse_duration(value.substr(colon + 1), &plan.bcn_delay,
                            error);
        if (ok && plan.bcn_delay_p > 0.0 && plan.bcn_delay <= 0) {
          ok = set_error(error, "bcn_delay duration must be positive");
        }
      }
    } else if (key == "data_drop") {
      ok = parse_probability(value, &plan.data_drop_p, error);
    } else if (key == "pause_drop") {
      ok = parse_probability(value, &plan.pause_drop_p, error);
    } else if (key == "flap") {
      ok = parse_flaps(value, &plan.flaps, error);
    } else if (key == "seed") {
      char extra = 0;
      unsigned long long seed = 0;
      if (std::sscanf(value.c_str(), "%llu%c", &seed, &extra) != 1) {
        ok = set_error(error, "seed '" + value + "' is not an integer");
      } else {
        plan.seed = seed;
      }
    } else {
      ok = set_error(error, "unknown fault key '" + key + "'");
    }
    if (!ok) return std::nullopt;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return plan;
}

const char* fault_plan_usage() {
  return
      "fault spec grammar (comma-separated key=value entries):\n"
      "  bcn_drop=P          drop reverse-path BCN notifications\n"
      "  bcn_dup=P           duplicate BCN notifications\n"
      "  bcn_delay=P:DUR     delay BCN notifications by DUR (e.g. 0.2:100us)\n"
      "  data_drop=P         drop forward-path data frames\n"
      "  pause_drop=P        drop 802.3x PAUSE frames\n"
      "  flap=AT+HOLD[/...]  timed link-down windows (e.g. 10ms+2ms)\n"
      "  seed=N              fault RNG seed (default 0xfa17)\n"
      "P is a probability in [0,1]; durations take ns|us|ms|s suffixes.\n"
      "Example: --faults bcn_drop=0.2,bcn_delay=0.1:100us,seed=7";
}

std::string fault_plan_summary(const FaultPlan& plan) {
  std::string s;
  const auto add = [&s](const std::string& part) {
    if (!s.empty()) s += ',';
    s += part;
  };
  if (plan.bcn_drop_p > 0.0) add(strf("bcn_drop=%g", plan.bcn_drop_p));
  if (plan.bcn_dup_p > 0.0) add(strf("bcn_dup=%g", plan.bcn_dup_p));
  if (plan.bcn_delay_p > 0.0) {
    add(strf("bcn_delay=%g:%lldns", plan.bcn_delay_p,
             static_cast<long long>(plan.bcn_delay)));
  }
  if (plan.data_drop_p > 0.0) add(strf("data_drop=%g", plan.data_drop_p));
  if (plan.pause_drop_p > 0.0) add(strf("pause_drop=%g", plan.pause_drop_p));
  if (!plan.flaps.empty()) {
    std::string flaps = "flap=";
    for (std::size_t i = 0; i < plan.flaps.size(); ++i) {
      if (i) flaps += '/';
      flaps += strf("%lldns+%lldns",
                    static_cast<long long>(plan.flaps[i].down_at),
                    static_cast<long long>(plan.flaps[i].up_at -
                                           plan.flaps[i].down_at));
    }
    add(flaps);
  }
  if (plan.seed != FaultPlan{}.seed) {
    add(strf("seed=%llu", static_cast<unsigned long long>(plan.seed)));
  }
  if (s.empty()) s = "none";
  return s;
}

void export_fault_metrics(const FaultCounters& counters,
                          obs::MetricsRegistry& registry,
                          const std::string& prefix) {
  registry.counter(prefix + "bcn_dropped").inc(counters.bcn_dropped);
  registry.counter(prefix + "bcn_duplicated").inc(counters.bcn_duplicated);
  registry.counter(prefix + "bcn_delayed").inc(counters.bcn_delayed);
  registry.counter(prefix + "data_dropped").inc(counters.data_dropped);
  registry.counter(prefix + "pause_dropped").inc(counters.pause_dropped);
  registry.counter(prefix + "link_flaps").inc(counters.link_flaps);
  registry.counter(prefix + "flap_dropped").inc(counters.flap_dropped);
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t entity,
                             FaultCounters* counters, obs::EventTrace* trace)
    : plan_(plan),
      entity_(entity),
      counters_(counters),
      trace_(trace),
      bcn_drop_rng_(lane_seed(plan.seed, entity, 0)),
      bcn_dup_rng_(lane_seed(plan.seed, entity, 1)),
      bcn_delay_rng_(lane_seed(plan.seed, entity, 2)),
      data_rng_(lane_seed(plan.seed, entity, 3)),
      pause_rng_(lane_seed(plan.seed, entity, 4)) {}

void FaultInjector::note_drop(const char* what) {
  // Rate-limited like sim.schedule_clamped: the first few drops identify
  // an active fault plan in the log; the fault.* counters keep the tally.
  if (drop_warnings_.allow()) {
    BCN_LOG_INFO(
        "fault: entity %u dropped a %s frame (occurrence %llu; totals in "
        "fault.* counters)",
        entity_, what,
        static_cast<unsigned long long>(drop_warnings_.count()));
  }
}

bool FaultInjector::drop_bcn(SimTime now, SourceId flow) {
  if (plan_.bcn_drop_p <= 0.0) return false;
  if (!bcn_drop_rng_.bernoulli(plan_.bcn_drop_p)) return false;
  if (counters_) ++counters_->bcn_dropped;
  if (trace_) {
    trace_->record({to_seconds(now), obs::EventKind::FaultBcnDropped,
                    entity_, flow, 0.0, 0.0});
  }
  note_drop("BCN");
  return true;
}

SimTime FaultInjector::bcn_extra_delay(SimTime now, SourceId flow) {
  if (plan_.bcn_delay_p <= 0.0) return 0;
  if (!bcn_delay_rng_.bernoulli(plan_.bcn_delay_p)) return 0;
  if (counters_) ++counters_->bcn_delayed;
  if (trace_) {
    trace_->record({to_seconds(now), obs::EventKind::FaultBcnDelayed,
                    entity_, flow, 0.0, to_seconds(plan_.bcn_delay)});
  }
  return plan_.bcn_delay;
}

bool FaultInjector::duplicate_bcn(SimTime now, SourceId flow) {
  if (plan_.bcn_dup_p <= 0.0) return false;
  if (!bcn_dup_rng_.bernoulli(plan_.bcn_dup_p)) return false;
  if (counters_) ++counters_->bcn_duplicated;
  if (trace_) {
    trace_->record({to_seconds(now), obs::EventKind::FaultBcnDuplicated,
                    entity_, flow, 0.0, 0.0});
  }
  return true;
}

bool FaultInjector::drop_pause(SimTime now) {
  if (plan_.pause_drop_p <= 0.0) return false;
  if (!pause_rng_.bernoulli(plan_.pause_drop_p)) return false;
  if (counters_) ++counters_->pause_dropped;
  if (trace_) {
    trace_->record({to_seconds(now), obs::EventKind::FaultPauseDropped,
                    entity_, 0, 0.0, 0.0});
  }
  note_drop("PAUSE");
  return true;
}

bool FaultInjector::link_down(SimTime now) const {
  for (const LinkFlapWindow& w : plan_.flaps) {
    if (now < w.down_at) return false;  // windows sorted
    if (now < w.up_at) return true;
  }
  return false;
}

bool FaultInjector::cut_by_flap(SimTime now, SourceId flow) {
  if (plan_.flaps.empty() || !link_down(now)) return false;
  if (counters_) ++counters_->flap_dropped;
  if (trace_) {
    trace_->record({to_seconds(now), obs::EventKind::FaultDataDropped,
                    entity_, flow, 0.0, 0.0});
  }
  note_drop("in-flight (link down)");
  return true;
}

bool FaultInjector::drop_data(SimTime now, SourceId flow) {
  if (plan_.data_drop_p <= 0.0) return false;
  if (!data_rng_.bernoulli(plan_.data_drop_p)) return false;
  if (counters_) ++counters_->data_dropped;
  if (trace_) {
    trace_->record({to_seconds(now), obs::EventKind::FaultDataDropped,
                    entity_, flow, 0.0, 0.0});
  }
  note_drop("data");
  return true;
}

}  // namespace bcn::sim
