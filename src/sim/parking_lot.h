// The parking-lot topology: two BCN congestion points in series.
//
//   group A (n_a sources) --> CP1 (C1) --+--> CP2 (C2) --> sink
//   group B (n_b sources) ---------------+
//
// Group A traverses both congestion points, group B only the second.
// This exercises the CPID-association rules of paper Section II.B end to
// end: a reaction point associates with the congestion point that first
// sends it negative feedback, its frames carry that CPID in the RRT tag,
// and *positive* feedback is only accepted from the matching congestion
// point -- so a flow bottlenecked at CP1 is never sped up by an idle CP2.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/faults.h"
#include "sim/time.h"

namespace bcn::sim {

struct ParkingLotConfig {
  int group_a = 4;             // sources traversing CP1 then CP2
  int group_b = 4;             // sources traversing only CP2
  double capacity1 = 10e9;     // CP1 link
  double capacity2 = 10e9;     // CP2 link
  double initial_rate = 2e9;   // per-source offered/start rate
  double frame_bits = 12000.0;
  double q0 = 2.5e6;
  double buffer = 30e6;
  double qsc = 28e6;
  double w = 2.0;
  double pm = 0.2;
  double gi = 0.5;
  double gd = 1.0 / 128.0;
  double ru = 8e6;
  SimTime propagation_delay = 500;
  SimTime duration = 60 * kMillisecond;
  // Causal BCN event traces at both congestion points; off for
  // maximum-throughput benchmark runs.
  bool record_events = true;

  // Degraded-network description (sim/faults.h).  Reverse-path faults
  // apply at both congestion points (independent RNG lanes per CPID);
  // data_drop and flap windows apply on the CP1 -> CP2 forward link.
  FaultPlan faults;
};

struct ParkingLotResult {
  double group_a_rate = 0.0;  // mean regulator rate at the end [bits/s]
  double group_b_rate = 0.0;
  double cp1_peak_queue = 0.0;
  double cp2_peak_queue = 0.0;
  std::uint64_t cp1_negatives = 0;
  std::uint64_t cp2_negatives = 0;
  std::uint64_t cp1_positives = 0;
  std::uint64_t cp2_positives = 0;
  // How many group-A regulators ended associated with CP1 vs CP2.
  int group_a_on_cp1 = 0;
  int group_a_on_cp2 = 0;
  std::uint64_t drops = 0;
  // Simulator events dispatched over the run (throughput benchmarking).
  std::size_t events_executed = 0;
  // Injected-fault tally (all zero when the plan is unarmed).
  FaultCounters fault_counters;
};

ParkingLotResult run_parking_lot(const ParkingLotConfig& config);

}  // namespace bcn::sim
