// Reaction-point rate regulator: the AIMD law of paper eq. (2).
//
// Two feedback-application modes:
//
//  * FluidMatched (default): each BCN message applies the paper's
//    *continuous* law integrated over the time since the previous update,
//    dr = Gi Ru sigma dt (sigma > 0) or r *= exp(Gd sigma dt) (sigma < 0).
//    The packet simulator then discretizes exactly the ODE (7) that the
//    phase-plane analysis studies, which is what the fluid-vs-packet
//    cross-validation experiment (E11) needs.
//
//  * DraftPerMessage: the literal per-message jump of the BCN draft,
//    r += Gi Ru sigma_frames, r *= (1 + Gd sigma_frames), with sigma
//    quantized to frames and the multiplicative factor floored.  This mode
//    exhibits the quantization-sustained oscillations seen in the
//    experiments of Lu et al. [4].
#pragma once

#include "sim/frame.h"
#include "sim/time.h"

namespace bcn::sim {

// * QcnSelfIncrease: the QCN direction the paper's Section II sketches --
//   the network sends only *negative* feedback, quantized to a few bits;
//   rate recovery is the source's own job (fast recovery toward the
//   pre-decrease target, then linear active increase), driven by the
//   source's periodic self_increase() calls.
//
// * FeraExplicitRate: the FERA/ERICA direction -- the switch computes an
//   explicit allowed rate and the regulator adopts it verbatim (smoothed
//   by an EWMA to avoid jumping on every sample).
enum class FeedbackMode {
  FluidMatched,
  DraftPerMessage,
  QcnSelfIncrease,
  FeraExplicitRate,
};

struct RegulatorConfig {
  double gi = 4.0;
  double gd = 1.0 / 128.0;
  double ru = 8e6;           // bits/s
  double min_rate = 1e6;     // starvation floor [bits/s]
  double max_rate = 10e9;    // source line rate [bits/s]
  double frame_bits = 12000; // sigma quantum in DraftPerMessage mode
  // Largest fraction of the rate one message may remove (DraftPerMessage
  // and QcnSelfIncrease).
  double max_decrease = 0.5;
  FeedbackMode mode = FeedbackMode::FluidMatched;

  // --- QcnSelfIncrease only -------------------------------------------------
  int qcn_feedback_bits = 6;     // |Fb| quantized to 2^bits - 1 levels
  double qcn_fb_scale = 64.0;    // sigma_frames mapping to full scale
  int qcn_fast_recovery_cycles = 5;
  double qcn_active_increase = 5e6;  // R_AI [bits/s] per self-increase

  // --- FeraExplicitRate only --------------------------------------------------
  // EWMA weight of a newly advertised rate (1.0 adopts it instantly).
  double fera_smoothing = 0.5;
};

// Per-regulator reaction accounting: how much feedback this reaction
// point actually applied, and the rate envelope it visited.  The switch
// side counts what was *sent*; these counters close the causal loop by
// counting what *arrived and acted*.
struct RegulatorCounters {
  std::uint64_t bcn_positive_applied = 0;
  std::uint64_t bcn_negative_applied = 0;
  std::uint64_t rate_adverts_applied = 0;
  std::uint64_t self_increases = 0;
  double min_rate_seen = 0.0;
  double max_rate_seen = 0.0;
  double last_sigma = 0.0;
};

class RateRegulator {
 public:
  RateRegulator(const RegulatorConfig& config, double initial_rate,
                SimTime now);

  double rate() const { return rate_; }
  const RegulatorCounters& counters() const { return counters_; }

  // True once a negative BCN associated this regulator with a congestion
  // point; its data frames then carry the RRT tag (paper Section II.B).
  bool is_associated() const { return associated_; }
  CongestionPointId cpid() const { return cpid_; }

  // Applies one BCN message at simulated time `now`.
  void on_bcn(const BcnMessage& message, SimTime now);

  // QcnSelfIncrease: one recovery step (fast recovery toward the
  // pre-decrease target rate, then linear active increase).  No-op in the
  // other modes.
  void self_increase();

  // QcnSelfIncrease introspection (for tests).
  double target_rate() const { return target_rate_; }
  bool in_fast_recovery() const {
    return recovery_cycles_ < config_.qcn_fast_recovery_cycles;
  }

 private:
  void apply_fluid(double sigma, double dt);
  void apply_draft(double sigma);
  void apply_qcn(double sigma);
  void clamp();
  void note_rate();

  RegulatorConfig config_;
  double rate_;
  RegulatorCounters counters_;
  bool associated_ = false;
  CongestionPointId cpid_ = 0;
  SimTime last_update_;
  // QcnSelfIncrease state.
  double target_rate_ = 0.0;
  int recovery_cycles_ = 0;
};

}  // namespace bcn::sim
