// Reaction-point rate regulator: the mechanism-driven end of the control
// loop (paper eq. (2) for BCN).
//
// The regulator owns what every mechanism shares -- clamping to
// [min_rate, max_rate], congestion-point association, and the applied-
// feedback counters -- and delegates the actual rate update to its
// PacketMechanism's reaction-point facet (sim/mechanism.h):
//
//  * "bcn" (default): each BCN message applies the paper's *continuous*
//    law integrated over the time since the previous update,
//    dr = Gi Ru sigma dt (sigma > 0) or r *= exp(Gd sigma dt) (sigma < 0),
//    so the packet simulator discretizes exactly the ODE (7) the
//    phase-plane analysis studies (what cross-validation E11 needs).
//  * "bcn-draft": the literal per-message jump of the BCN draft, with
//    sigma quantized to frames and the multiplicative factor floored.
//  * "qcn": negative-only quantized decrease; recovery via the source's
//    periodic self_increase() calls.
//  * "fera" / "rcp": explicit-rate adoption from the switch's adverts.
#pragma once

#include "sim/frame.h"
#include "sim/mechanism.h"
#include "sim/time.h"

namespace bcn::sim {

struct RegulatorConfig {
  double gi = 4.0;
  double gd = 1.0 / 128.0;
  double ru = 8e6;           // bits/s
  double min_rate = 1e6;     // starvation floor [bits/s]
  double max_rate = 10e9;    // source line rate [bits/s]
  double frame_bits = 12000; // sigma quantum in bcn-draft mode
  // Largest fraction of the rate one bcn-draft message may remove.
  double max_decrease = 0.5;
};

// Per-regulator reaction accounting: how much feedback this reaction
// point actually applied, and the rate envelope it visited.  The switch
// side counts what was *sent*; these counters close the causal loop by
// counting what *arrived and acted*.
struct RegulatorCounters {
  std::uint64_t bcn_positive_applied = 0;
  std::uint64_t bcn_negative_applied = 0;
  std::uint64_t rate_adverts_applied = 0;
  std::uint64_t self_increases = 0;
  double min_rate_seen = 0.0;
  double max_rate_seen = 0.0;
  double last_sigma = 0.0;
};

class RateRegulator {
 public:
  // `mechanism` selects the reaction policy; nullptr uses the shared BCN
  // fluid-matched mechanism.  The pointer is not owned and must outlive
  // the regulator.
  RateRegulator(const RegulatorConfig& config, double initial_rate,
                SimTime now, const PacketMechanism* mechanism = nullptr);

  double rate() const { return state_.rate; }
  const RegulatorCounters& counters() const { return counters_; }
  const PacketMechanism& mechanism() const { return *mechanism_; }

  // True once a negative BCN associated this regulator with a congestion
  // point; its data frames then carry the RRT tag (paper Section II.B).
  bool is_associated() const { return associated_; }
  CongestionPointId cpid() const { return cpid_; }

  // Applies one BCN message at simulated time `now`.
  void on_bcn(const BcnMessage& message, SimTime now);

  // One recovery step for mechanisms with source-driven recovery (QCN:
  // fast recovery toward the pre-decrease target rate, then linear active
  // increase).  No-op for the others.
  void self_increase();

  // Self-increase introspection (for tests).
  double target_rate() const { return state_.target_rate; }
  bool in_fast_recovery() const { return mechanism_->in_fast_recovery(state_); }

 private:
  void clamp();
  void note_rate();

  RegulatorConfig config_;
  const PacketMechanism* mechanism_;
  RegulatorState state_;
  RegulatorCounters counters_;
  bool associated_ = false;
  CongestionPointId cpid_ = 0;
  SimTime last_update_;
};

}  // namespace bcn::sim
