// A single switch output port: a drop-tail FIFO served at the port rate,
// pausable by 802.3x PAUSE from the downstream receiver, with an optional
// BCN congestion point and an upstream-PAUSE trigger on its own queue.
//
// Multi-port switches for the multi-hop scenarios (sim/multihop.h) compose
// several of these behind a forwarding function.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.h"
#include "sim/frame.h"
#include "sim/stats.h"

namespace bcn::sim {

struct SwitchPortConfig {
  double rate = 10e9;         // service rate [bits/s]
  double buffer_bits = 5e6;   // drop-tail limit
  // Upstream back-pressure: when the queue exceeds this, ask the upstream
  // hop to pause (0 disables).
  double pause_threshold = 0.0;
  SimTime pause_duration = 3355;
  // Optional BCN congestion point on this port (0 disables sampling).
  double bcn_pm = 0.0;
  double bcn_q0 = 2.5e6;
  double bcn_w = 2.0;
  CongestionPointId cpid = 0;
  // Identity used in observer event records (ports without a BCN
  // congestion point have cpid 0 and are otherwise indistinguishable in
  // a multi-port trace).
  std::uint32_t port_label = 0;
};

struct SwitchPortStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  double bits_delivered = 0.0;
  std::uint64_t pauses_sent = 0;
  std::uint64_t bcn_sent = 0;
};

class SwitchPort {
 public:
  using FrameSink = std::function<void(const Frame&)>;
  using PauseUpstream = std::function<void(const PauseFrame&)>;
  using BcnSender = std::function<void(const BcnMessage&)>;

  SwitchPort(Simulator& sim, SwitchPortConfig config);

  // Downstream delivery target for frames completing service.
  void set_sink(FrameSink sink) { sink_ = std::move(sink); }
  // Called when this port wants its feeders paused.
  void set_pause_upstream(PauseUpstream pause) { pause_ = std::move(pause); }
  void set_bcn_sender(BcnSender sender) { bcn_ = std::move(sender); }
  // Optional shared observability sink: the port records its BCN samples
  // and PAUSE on/off transitions into the stats' event trace (multi-port
  // topologies share one SimStats across ports).
  void set_observer(SimStats* stats) { observer_ = stats; }

  // Frame arrival at this port.
  void on_frame(const Frame& frame);

  // 802.3x PAUSE received from the downstream receiver: stop serving.
  void on_pause(const PauseFrame& pause);

  double queue_bits() const { return queue_bits_; }
  const SwitchPortStats& stats() const { return stats_; }

 private:
  void maybe_sample(const Frame& frame);
  void maybe_pause_upstream();
  void start_service();
  void finish_service();

  Simulator& sim_;
  SwitchPortConfig config_;
  SwitchPortStats stats_;
  SimStats* observer_ = nullptr;
  FrameSink sink_;
  PauseUpstream pause_;
  BcnSender bcn_;

  std::deque<Frame> queue_;
  double queue_bits_ = 0.0;
  bool serving_ = false;
  SimTime paused_until_ = 0;
  SimTime pause_cooldown_until_ = 0;

  std::uint64_t arrivals_since_sample_ = 0;
  std::uint64_t sample_every_ = 0;
  double queue_at_last_sample_ = 0.0;
};

}  // namespace bcn::sim
