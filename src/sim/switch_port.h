// A single switch output port: a drop-tail FIFO served at the port rate,
// pausable by 802.3x PAUSE from the downstream receiver, with an optional
// BCN congestion point and an upstream-PAUSE trigger on its own queue.
//
// Multi-port switches for the multi-hop scenarios (sim/multihop.h) compose
// several of these behind a forwarding function.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "obs/monitor.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/frame.h"
#include "sim/stats.h"

namespace bcn::sim {

struct SwitchPortConfig {
  double rate = 10e9;         // service rate [bits/s]
  double buffer_bits = 5e6;   // drop-tail limit
  // Upstream back-pressure: when the queue exceeds this, ask the upstream
  // hop to pause (0 disables).
  double pause_threshold = 0.0;
  SimTime pause_duration = 3355;
  // Optional BCN congestion point on this port (0 disables sampling).
  double bcn_pm = 0.0;
  double bcn_q0 = 2.5e6;
  double bcn_w = 2.0;
  CongestionPointId cpid = 0;
  // Identity used in observer event records (ports without a BCN
  // congestion point have cpid 0 and are otherwise indistinguishable in
  // a multi-port trace).
  std::uint32_t port_label = 0;
};

struct SwitchPortStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  double bits_delivered = 0.0;
  std::uint64_t pauses_sent = 0;
  std::uint64_t bcn_sent = 0;
};

class SwitchPort : public EventTarget {
 public:
  using FrameSink = std::function<void(const Frame&)>;
  using PauseUpstream = std::function<void(const PauseFrame&)>;
  using BcnSender = std::function<void(const BcnMessage&)>;

  SwitchPort(Simulator& sim, SwitchPortConfig config);

  // Typed-event dispatch: service completion and pause expiry.
  void on_event(const SimEvent& event) override;

  // Downstream delivery target for frames completing service.  Each hop
  // accepts either a std::function (tests, ad-hoc wiring) or an EventLink
  // (the scenarios' zero-closure fast path); a set link wins.
  void set_sink(FrameSink sink) { sink_ = std::move(sink); }
  void set_sink(const EventLink& link) { sink_link_ = link; }
  // Called when this port wants its feeders paused.
  void set_pause_upstream(PauseUpstream pause) { pause_ = std::move(pause); }
  void set_pause_upstream(const EventLink& link) { pause_link_ = link; }
  void set_bcn_sender(BcnSender sender) { bcn_ = std::move(sender); }
  void set_bcn_sender(const EventLink& link) { bcn_link_ = link; }
  // Optional shared observability sink: the port records its BCN samples
  // and PAUSE on/off transitions into the stats' event trace (multi-port
  // topologies share one SimStats across ports).
  void set_observer(SimStats* stats) { observer_ = stats; }

  // Optional reverse-path fault injector (sim/faults.h) applied to this
  // port's BCN emissions and upstream-PAUSE frames.  Scenarios only
  // attach one when the plan is armed.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // Optional runtime invariant monitor (obs/monitor.h): per-frame queue
  // occupancy checks on enqueue/depart, keyed by port_label.
  void set_monitor(obs::RunMonitor* monitor) { monitor_ = monitor; }

  // Frame arrival at this port.
  void on_frame(const Frame& frame);

  // 802.3x PAUSE received from the downstream receiver: stop serving.
  void on_pause(const PauseFrame& pause);

  double queue_bits() const { return queue_bits_; }
  const SwitchPortStats& stats() const { return stats_; }

 private:
  // Timer tags carried in this port's typed events.
  static constexpr std::uint32_t kTagDepart = 0;
  static constexpr std::uint32_t kTagResume = 1;

  void maybe_sample(const Frame& frame);
  void maybe_pause_upstream();
  void start_service();
  void finish_service();
  void resume_after_pause();

  // One-entry service-time memo: the drain rate is fixed and frame sizes
  // are usually uniform, so the per-departure floating-point divide
  // collapses to a compare.
  SimTime service_time(double bits) {
    if (bits != service_bits_) {
      service_bits_ = bits;
      service_gap_ = transmission_time(bits, config_.rate);
    }
    return service_gap_;
  }

  Simulator& sim_;
  SwitchPortConfig config_;
  SwitchPortStats stats_;
  SimStats* observer_ = nullptr;
  FrameSink sink_;
  PauseUpstream pause_;
  BcnSender bcn_;
  EventLink sink_link_;
  EventLink pause_link_;
  EventLink bcn_link_;
  FaultInjector* faults_ = nullptr;
  obs::RunMonitor* monitor_ = nullptr;

  std::deque<Frame> queue_;
  double queue_bits_ = 0.0;
  double service_bits_ = -1.0;
  SimTime service_gap_ = 0;
  bool serving_ = false;
  // Reused service-completion timer (stale while the queue is drained or
  // the server waits out a PAUSE).
  EventId depart_timer_ = kInvalidEvent;
  SimTime paused_until_ = 0;
  SimTime pause_cooldown_until_ = 0;

  std::uint64_t arrivals_since_sample_ = 0;
  std::uint64_t sample_every_ = 0;
  double queue_at_last_sample_ = 0.0;
};

}  // namespace bcn::sim
