#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>

namespace bcn::sim {
namespace {

// Zero-padded flow ids keep timeline names in numeric order under the
// TimelineSet's lexicographic export ("flow.0002" < "flow.0010").
std::string flow_series_name(SourceId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flow.%04u.rate_bps", id);
  return buf;
}

}  // namespace

Network::Network(NetworkConfig config) : config_(config) {
  const core::BcnParams& p = config_.params;
  assert(p.is_valid());

  // Resolve the mechanism name(s) against the registry.  Misconfiguration
  // is a programming error in scenario wiring, so fail loudly.
  core::MechanismConfig mcfg;
  mcfg.plant = p;
  mcfg.rcp = config_.rcp;
  mcfg.qcn = config_.qcn;
  mcfg.fera = config_.fera;
  mcfg.qcn.frame_bits = config_.frame_bits;
  mech_a_ = make_packet_mechanism(config_.mechanism, mcfg);
  if (!mech_a_) {
    std::fprintf(stderr, "Network: unknown mechanism '%s' (known: %s)\n",
                 config_.mechanism.c_str(),
                 core::mechanism_name_list().c_str());
    std::abort();
  }
  if (!config_.mechanism_b.empty()) {
    mech_b_ = make_packet_mechanism(config_.mechanism_b, mcfg);
    if (!mech_b_) {
      std::fprintf(stderr, "Network: unknown mechanism_b '%s' (known: %s)\n",
                   config_.mechanism_b.c_str(),
                   core::mechanism_name_list().c_str());
      std::abort();
    }
  }

  CoreSwitchConfig sw;
  sw.cpid = 1;
  sw.capacity = p.capacity;
  sw.buffer_bits = p.buffer;
  sw.q0 = p.q0;
  sw.qsc = p.qsc;
  sw.w = p.w;
  sw.pm = p.pm;
  sw.enable_pause = config_.enable_pause;
  // The draft's CPID gate on positive feedback is the mechanism's call;
  // fluid-matched runs need the fluid model's ungated bidirectional
  // feedback, the draft mode keeps the gate.
  sw.positive_requires_rrt = mech_a_->positive_requires_rrt();
  sw.random_sampling = config_.random_sampling;
  sw.sampling_seed = config_.sampling_seed;
  switch_ = std::make_unique<CoreSwitch>(sim_, sw, stats_);
  switch_->set_mechanism(mech_a_.get());

  const auto n = static_cast<std::size_t>(p.num_sources);
  const double max_rate =
      config_.max_rate > 0.0 ? config_.max_rate : p.capacity;
  const double init_rate =
      config_.initial_rate > 0.0 ? config_.initial_rate : p.init_rate;

  // Competition split: sources [first_b, n) run mechanism_b.
  std::size_t first_b = n;
  if (mech_b_) {
    const std::size_t nb =
        std::min(config_.sources_b > 0 ? config_.sources_b : n / 2, n);
    first_b = n - nb;
    switch_->set_mechanism_split(mech_b_.get(),
                                 static_cast<SourceId>(first_b));
  }

  sources_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SourceConfig sc;
    sc.id = static_cast<SourceId>(i);
    sc.frame_bits = config_.frame_bits;
    sc.initial_rate = init_rate;
    sc.regulator.gi = p.gi;
    sc.regulator.gd = p.gd;
    sc.regulator.ru = p.ru;
    sc.regulator.min_rate = config_.min_rate;
    sc.regulator.max_rate = max_rate;
    sc.regulator.frame_bits = config_.frame_bits;
    sc.mechanism = i >= first_b ? mech_b_.get() : mech_a_.get();
    sc.pattern = config_.pattern;
    sc.on_time = config_.on_time;
    sc.off_time = config_.off_time;
    sc.start_at = static_cast<SimTime>(i) * config_.stagger;
    sources_.push_back(std::make_unique<Source>(sim_, sc));
  }

  if (!config_.record_events) stats_.events().set_enabled(false);

  if (config_.monitors.spec.any()) {
    monitor_.configure(config_.monitors, &stats_.events());
    monitor_.set_queue_bound(p.buffer);
    // Aggregate rate can never exceed every source at its line rate.
    monitor_.set_rate_bound(static_cast<double>(n) * max_rate);
    switch_->set_monitor(&monitor_);
  }

  if (config_.faults.armed()) {
    // Entity 1 (the core switch's cpid) owns the reverse-path lanes;
    // entity 0 the forward source -> switch link.  An unarmed plan skips
    // this block entirely so the lossless path never touches fault state.
    switch_faults_ = FaultInjector(config_.faults, sw.cpid, &fault_counters_,
                                   &stats_.events());
    link_faults_ =
        FaultInjector(config_.faults, 0, &fault_counters_, &stats_.events());
    switch_->set_fault_injector(&switch_faults_);
    for (const LinkFlapWindow& w : config_.faults.flaps) {
      sim_.schedule_event(w.down_at, this, EventKind::Tick, kTagFlapEdge);
      sim_.schedule_event(w.up_at, this, EventKind::Tick, kTagFlapEdge);
    }
  }

  // Backward channel: BCN unicast to the tagged source, PAUSE broadcast to
  // every upstream sender, both after the propagation delay.  Deliveries
  // are typed events dispatched back to this network and traced as
  // *Applied events, closing the causal pair with the switch-side *Sent
  // records.
  switch_->set_bcn_sender(
      EventLink(sim_, this, kTagBcnToSource, config_.propagation_delay));
  switch_->set_pause_sender(
      EventLink(sim_, this, kTagPauseToSources, config_.propagation_delay));

  // Forward channel: source frames reach the switch after the propagation
  // delay (serialization is already captured by the pacing gap).
  const EventLink to_switch(sim_, this, kTagFrameToSwitch,
                            config_.propagation_delay);
  for (auto& src : sources_) {
    src->start(to_switch, &stats_.counters.frames_sent);
  }

  if (config_.record_timelines) {
    queue_timeline_ = &stats_.timelines().series("port.core.queue_bits");
    flow_rate_timelines_.reserve(sources_.size());
    for (const auto& src : sources_) {
      flow_rate_timelines_.push_back(
          &stats_.timelines().series(flow_series_name(src->id())));
    }
  }

  record_sample();
}

void Network::on_event(const SimEvent& event) {
  switch (event.tag) {
    case kTagFrameToSwitch:
      if (link_faults_.armed()) {
        const Frame& f = event.payload.frame;
        if (link_faults_.cut_by_flap(sim_.now(), f.source) ||
            link_faults_.drop_data(sim_.now(), f.source)) {
          break;
        }
      }
      switch_->on_frame(event.payload.frame);
      break;
    case kTagBcnToSource:
      deliver_bcn(event.payload.bcn);
      break;
    case kTagPauseToSources:
      deliver_pause(event.payload.pause);
      break;
    case kTagSampleTick:
      record_sample();
      break;
    case kTagFlapEdge: {
      // Scheduled at every window edge; inside a window it's the down
      // edge ([down_at, up_at) is half-open, so up_at tests false).
      const bool down = link_faults_.link_down(sim_.now());
      if (down) ++fault_counters_.link_flaps;
      stats_.events().record(
          {to_seconds(sim_.now()),
           down ? obs::EventKind::LinkDown : obs::EventKind::LinkUp, 0, 0,
           0.0, 0.0});
      break;
    }
  }
}

void Network::deliver_bcn(const BcnMessage& msg) {
  if (msg.target >= sources_.size()) return;
  sources_[msg.target]->on_bcn(msg);
  stats_.events().record({to_seconds(sim_.now()), obs::EventKind::BcnApplied,
                          msg.cpid, msg.target, msg.sigma,
                          sources_[msg.target]->rate()});
}

void Network::deliver_pause(const PauseFrame& pause) {
  for (auto& src : sources_) {
    const bool was_paused = src->is_paused(sim_.now());
    src->on_pause(pause);
    if (!was_paused) {
      stats_.events().record({to_seconds(sim_.now()),
                              obs::EventKind::PauseApplied, 0, src->id(), 0.0,
                              to_seconds(pause.duration)});
    }
  }
}

double Network::aggregate_rate() const {
  double sum = 0.0;
  for (const auto& src : sources_) sum += src->rate();
  return sum;
}

void Network::record_sample() {
  const double rate = aggregate_rate();
  stats_.record(sim_.now(), switch_->queue_bits(), rate);
  if (config_.record_timelines) {
    const double t = to_seconds(sim_.now());
    queue_timeline_->record(t, switch_->queue_bits());
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      flow_rate_timelines_[i]->record(t, sources_[i]->rate());
    }
  }
  if (monitor_.armed()) {
    obs::MonitorSample s;
    s.t = to_seconds(sim_.now());
    s.queue_bits = switch_->queue_bits();
    s.aggregate_rate = rate;
    s.frames_sent = stats_.counters.frames_sent;
    s.frames_enqueued = stats_.counters.frames_enqueued;
    s.frames_delivered = stats_.counters.frames_delivered;
    s.frames_dropped = stats_.counters.frames_dropped;
    s.pause_frames = stats_.counters.pause_frames;
    s.bits_delivered = stats_.counters.bits_delivered;
    monitor_.on_sample(s);
  }
  sample_timer_ = sim_.arm(sample_timer_, sim_.now() + config_.record_interval,
                           this, EventKind::Tick, kTagSampleTick);
}

void Network::run(SimTime duration) {
  run_until_ += duration;
  sim_.run_until(run_until_);
}

}  // namespace bcn::sim
