#include "sim/mechanism.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sim/core_switch.h"
#include "sim/rate_regulator.h"

namespace bcn::sim {
namespace {

AppliedFeedback applied_by_sign(double sigma) {
  if (sigma < 0.0) return AppliedFeedback::Negative;
  if (sigma > 0.0) return AppliedFeedback::Positive;
  return AppliedFeedback::None;
}

// --- BCN --------------------------------------------------------------------
class BcnPacketMechanism final : public PacketMechanism {
 public:
  explicit BcnPacketMechanism(bool draft) : draft_(draft) {}

  const char* name() const override { return draft_ ? "bcn-draft" : "bcn"; }

  FeedbackDecision on_sample(const SwitchSample& s) override {
    if (s.sigma < 0.0) {
      // Negative feedback: always sent to the sampled frame's source.
      return {FeedbackDecision::Kind::Negative, -1.0};
    }
    if (s.sigma > 0.0 &&
        (!s.config->positive_requires_rrt ||
         (s.frame->has_rrt && s.frame->rrt_cpid == s.config->cpid)) &&
        s.queue_bits < s.config->q0) {
      // Positive feedback: only to tagged (rate-regulated) sources, and
      // only while the queue is below the reference (paper Section II.B).
      return {FeedbackDecision::Kind::Positive, -1.0};
    }
    return {};
  }

  bool positive_requires_rrt() const override { return draft_; }

  AppliedFeedback apply_feedback(RegulatorState& st,
                                 const RegulatorConfig& config,
                                 const BcnMessage& message,
                                 double dt) const override {
    const double sigma = message.sigma;
    if (draft_) {
      const double sigma_frames = sigma / config.frame_bits;
      if (sigma > 0.0) {
        st.rate += config.gi * config.ru * sigma_frames;
      } else if (sigma < 0.0) {
        const double factor = std::max(1.0 - config.max_decrease,
                                       1.0 + config.gd * sigma_frames);
        st.rate *= factor;
      }
    } else {
      if (sigma > 0.0) {
        st.rate += config.gi * config.ru * sigma * dt;  // dr = Gi Ru sigma dt
      } else if (sigma < 0.0) {
        // Exact integration of dr/dt = Gd sigma r over dt (sigma held).
        st.rate *= std::exp(config.gd * sigma * dt);
      }
    }
    return applied_by_sign(sigma);
  }

 private:
  bool draft_;
};

// --- QCN --------------------------------------------------------------------
class QcnPacketMechanism final : public PacketMechanism {
 public:
  explicit QcnPacketMechanism(const core::QcnParams& qcn) : qcn_(qcn) {}

  const char* name() const override { return "qcn"; }

  FeedbackDecision on_sample(const SwitchSample& s) override {
    // QCN sends only negative feedback; recovery is the sources' job.
    if (s.sigma < 0.0) return {FeedbackDecision::Kind::Negative, -1.0};
    return {};
  }

  void init_state(RegulatorState& st) const override {
    st.target_rate = st.rate;
    st.recovery_cycles = qcn_.fast_recovery_cycles;  // no recovery armed
  }

  AppliedFeedback apply_feedback(RegulatorState& st,
                                 const RegulatorConfig& /*config*/,
                                 const BcnMessage& message,
                                 double /*dt*/) const override {
    const double sigma = message.sigma;
    if (sigma < 0.0) {
      // Quantize |sigma| (in frames) to the feedback field's resolution.
      const double sigma_frames = -sigma / qcn_.frame_bits;
      const double full_scale =
          static_cast<double>((1 << qcn_.feedback_bits) - 1);
      const double fb = std::min(
          full_scale, std::ceil(sigma_frames / qcn_.fb_scale * full_scale));
      if (fb > 0.0) {
        st.target_rate = st.rate;  // remember for fast recovery
        st.rate *= 1.0 - qcn_.max_decrease * fb / (full_scale + 1.0);
        st.recovery_cycles = 0;
      }
    }
    return applied_by_sign(sigma);
  }

  bool has_self_increase() const override { return true; }

  void self_increase(RegulatorState& st,
                     const RegulatorConfig& /*config*/) const override {
    if (st.recovery_cycles < qcn_.fast_recovery_cycles) {
      st.rate = (st.rate + st.target_rate) / 2.0;
      ++st.recovery_cycles;
    } else {
      st.target_rate += qcn_.active_increase;
      st.rate = (st.rate + st.target_rate) / 2.0;
    }
  }

  bool in_fast_recovery(const RegulatorState& st) const override {
    return st.recovery_cycles < qcn_.fast_recovery_cycles;
  }

 private:
  core::QcnParams qcn_;
};

// --- FERA -------------------------------------------------------------------
class FeraPacketMechanism final : public PacketMechanism {
 public:
  explicit FeraPacketMechanism(const core::FeraParams& fera) : fera_(fera) {}

  const char* name() const override { return "fera"; }

  bool wants_arrival_hook() const override { return true; }

  void on_arrival(const Frame& frame, double /*now_s*/) override {
    // Active-flow estimation: distinct sources per epoch.
    epoch_sources_.insert(frame.source);
    if (++epoch_arrivals_ >= fera_.epoch_frames) {
      active_flow_estimate_ = std::max<std::size_t>(1, epoch_sources_.size());
      epoch_sources_.clear();
      epoch_arrivals_ = 0;
    }
  }

  FeedbackDecision on_sample(const SwitchSample& s) override {
    // Fair share scaled by the queue deviation from the reference.
    const double fair =
        s.config->capacity / static_cast<double>(active_flow_estimate_);
    const double correction =
        1.0 - fera_.alpha * (s.queue_bits - s.config->q0) / s.config->q0;
    return {FeedbackDecision::Kind::RateAdvert,
            std::max(0.0, fair * correction)};
  }

  AppliedFeedback apply_feedback(RegulatorState& st,
                                 const RegulatorConfig& /*config*/,
                                 const BcnMessage& message,
                                 double /*dt*/) const override {
    if (message.advertised_rate < 0.0) return AppliedFeedback::None;
    const double alpha = fera_.smoothing;
    st.rate = (1.0 - alpha) * st.rate + alpha * message.advertised_rate;
    return AppliedFeedback::RateAdvert;
  }

 private:
  core::FeraParams fera_;
  std::unordered_set<SourceId> epoch_sources_;
  std::uint64_t epoch_arrivals_ = 0;
  std::size_t active_flow_estimate_ = 1;
};

// --- RCP --------------------------------------------------------------------
class RcpPacketMechanism final : public PacketMechanism {
 public:
  explicit RcpPacketMechanism(const core::RcpParams& rcp) : rcp_(rcp) {}

  const char* name() const override { return "rcp"; }

  bool wants_arrival_hook() const override { return true; }

  void on_arrival(const Frame& frame, double /*now_s*/) override {
    arrived_bits_ += frame.size_bits;
  }

  FeedbackDecision on_sample(const SwitchSample& s) override {
    const double cap = s.config->capacity;
    if (rate_ < 0.0) {
      // First sample: start optimistic at capacity, per RCP.
      rate_ = cap;
      interval_start_ = s.now_s;
      arrived_bits_ = 0.0;
    } else if (s.now_s - interval_start_ >= rcp_.interval) {
      // Once per control interval: relative rate-mismatch + queue update,
      //   R <- R [1 + (T/d)(alpha (C - y) - beta (q - q0)/d) / C].
      const double elapsed = s.now_s - interval_start_;
      const double measured = arrived_bits_ / elapsed;
      const double gain = (rcp_.alpha * (cap - measured) -
                           rcp_.beta * (s.queue_bits - s.config->q0) /
                               rcp_.interval) /
                          cap;
      double factor = 1.0 + (elapsed / rcp_.interval) * gain;
      // One interval may not more than halve or double the rate.
      factor = std::clamp(factor, 0.5, 2.0);
      rate_ = std::clamp(rate_ * factor, 1e-3 * cap, cap);
      interval_start_ = s.now_s;
      arrived_bits_ = 0.0;
    }
    return {FeedbackDecision::Kind::RateAdvert, rate_};
  }

  AppliedFeedback apply_feedback(RegulatorState& st,
                                 const RegulatorConfig& /*config*/,
                                 const BcnMessage& message,
                                 double /*dt*/) const override {
    if (message.advertised_rate < 0.0) return AppliedFeedback::None;
    // Processor-sharing semantics: every flow adopts the advertised rate.
    st.rate = message.advertised_rate;
    return AppliedFeedback::RateAdvert;
  }

 private:
  core::RcpParams rcp_;
  double rate_ = -1.0;  // advertised per-flow rate; <0 until first sample
  double interval_start_ = 0.0;
  double arrived_bits_ = 0.0;
};

}  // namespace

PacketMechanism& default_bcn_mechanism() {
  // Stateless, so one shared instance serves every scenario and test.
  static BcnPacketMechanism instance(false);
  return instance;
}

std::unique_ptr<PacketMechanism> make_packet_mechanism(
    std::string_view name, const core::MechanismConfig& config) {
  if (name == "bcn") return std::make_unique<BcnPacketMechanism>(false);
  if (name == "bcn-draft") return std::make_unique<BcnPacketMechanism>(true);
  if (name == "qcn") return std::make_unique<QcnPacketMechanism>(config.qcn);
  if (name == "fera") {
    return std::make_unique<FeraPacketMechanism>(config.fera);
  }
  if (name == "rcp") return std::make_unique<RcpPacketMechanism>(config.rcp);
  return nullptr;
}

}  // namespace bcn::sim
