#include "sim/stats.h"

#include <algorithm>

namespace bcn::sim {

double SimStats::max_queue() const {
  double m = 0.0;
  for (const auto& p : trace_) m = std::max(m, p.queue_bits);
  return m;
}

double SimStats::min_queue_after(SimTime t) const {
  double m = -1.0;
  for (const auto& p : trace_) {
    if (p.t < t) continue;
    if (m < 0.0 || p.queue_bits < m) m = p.queue_bits;
  }
  return std::max(m, 0.0);
}

double SimStats::mean_queue() const {
  if (trace_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : trace_) sum += p.queue_bits;
  return sum / static_cast<double>(trace_.size());
}

double SimStats::throughput(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return counters.bits_delivered / to_seconds(horizon);
}

double SimStats::jain_fairness_index() const {
  if (per_source_bits_.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [id, bits] : per_source_bits_) {
    sum += bits;
    sum_sq += bits * bits;
  }
  if (sum_sq <= 0.0) return 1.0;
  const double n = static_cast<double>(per_source_bits_.size());
  return sum * sum / (n * sum_sq);
}

ode::Trajectory SimStats::to_phase_trajectory(double q0,
                                              double capacity) const {
  ode::Trajectory out;
  out.reserve(trace_.size());
  for (const auto& p : trace_) {
    out.push_back(to_seconds(p.t),
                  {p.queue_bits - q0, p.aggregate_rate - capacity});
  }
  return out;
}

}  // namespace bcn::sim
