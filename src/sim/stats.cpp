#include "sim/stats.h"

#include <algorithm>

namespace bcn::sim {
namespace {

// Sigma buckets in bits, symmetric about 0.  Sigma is bounded by
// ~q0 + w * (queue change per sampling interval), so megabit-scale
// bounds cover every standard-draft configuration.
std::vector<double> sigma_bounds() {
  return {-5e6, -2.5e6, -1e6, -2.5e5, 0.0, 2.5e5, 1e6, 2.5e6, 5e6};
}

}  // namespace

SimStats::SimStats() : sigma_histogram_(sigma_bounds()) {}

double SimStats::max_queue() const {
  double m = 0.0;
  for (const auto& p : trace_) m = std::max(m, p.queue_bits);
  return m;
}

std::optional<double> SimStats::min_queue_after(SimTime t) const {
  std::optional<double> m;
  for (const auto& p : trace_) {
    if (p.t < t) continue;
    if (!m || p.queue_bits < *m) m = p.queue_bits;
  }
  return m;
}

double SimStats::mean_queue() const {
  if (trace_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : trace_) sum += p.queue_bits;
  return sum / static_cast<double>(trace_.size());
}

double SimStats::throughput(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  if (trace_.empty()) {
    // No trace to validate against; lifetime counters are all we have.
    return counters.bits_delivered / to_seconds(horizon);
  }
  const SimTime window = std::min(horizon, trace_.back().t);
  if (window <= 0) return 0.0;
  double bits = 0.0;
  for (const auto& p : trace_) {
    if (p.t > window) break;  // trace is recorded in time order
    bits = p.bits_delivered;
  }
  return bits / to_seconds(window);
}

std::size_t SimStats::delivered_source_count() const {
  std::size_t n = 0;
  for (const std::uint8_t seen : per_source_seen_) n += seen;
  return n;
}

std::vector<std::pair<SourceId, double>> SimStats::per_source_bits_sorted()
    const {
  // The dense store is already in SourceId order; just drop the holes.
  std::vector<std::pair<SourceId, double>> out;
  out.reserve(per_source_bits_.size());
  for (std::size_t i = 0; i < per_source_bits_.size(); ++i) {
    if (per_source_seen_[i]) {
      out.emplace_back(static_cast<SourceId>(i), per_source_bits_[i]);
    }
  }
  return out;
}

double SimStats::jain_fairness_index() const {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < per_source_bits_.size(); ++i) {
    if (!per_source_seen_[i]) continue;
    const double bits = per_source_bits_[i];
    sum += bits;
    sum_sq += bits * bits;
    ++n;
  }
  if (n == 0 || sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(n) * sum_sq);
}

void SimStats::export_metrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + "frames_sent").inc(counters.frames_sent);
  registry.counter(prefix + "frames_enqueued").inc(counters.frames_enqueued);
  registry.counter(prefix + "frames_dropped").inc(counters.frames_dropped);
  registry.counter(prefix + "frames_delivered")
      .inc(counters.frames_delivered);
  registry.counter(prefix + "frames_sampled").inc(counters.frames_sampled);
  registry.counter(prefix + "bcn_positive").inc(counters.bcn_positive);
  registry.counter(prefix + "bcn_negative").inc(counters.bcn_negative);
  registry.counter(prefix + "pause_frames").inc(counters.pause_frames);
  registry.counter(prefix + "trace_samples").inc(trace_.size());
  registry.counter(prefix + "events").inc(events_.size());
  registry.gauge(prefix + "bits_delivered").set(counters.bits_delivered);
  registry.gauge(prefix + "max_queue_bits").set(max_queue());
  registry.gauge(prefix + "mean_queue_bits").set(mean_queue());
  registry.gauge(prefix + "jain_fairness").set(jain_fairness_index());
  for (const auto& [id, bits] : per_source_bits_sorted()) {
    registry.gauge(prefix + "flow." + std::to_string(id) + ".bits_delivered")
        .set(bits);
  }
  registry.histogram(prefix + "sigma_bits", sigma_bounds())
      .merge(sigma_histogram_);
}

ode::Trajectory SimStats::to_phase_trajectory(double q0,
                                              double capacity) const {
  ode::Trajectory out;
  out.reserve(trace_.size());
  for (const auto& p : trace_) {
    out.push_back(to_seconds(p.t),
                  {p.queue_bits - q0, p.aggregate_rate - capacity});
  }
  return out;
}

}  // namespace bcn::sim
