// Lock-free bounded MPSC queue for cross-shard frame exchange.
//
// Bounded Vyukov-style ring: every cell carries a sequence stamp, so
// producers claim slots with one fetch_add and publish with one release
// store -- no CAS loops on the hot path, no allocation after
// construction, and per-producer FIFO order (a producer's own pushes are
// ticketed in program order).  The sharded engine drains each queue from
// exactly one consumer (the owner shard) at epoch boundaries; the stamp
// protocol is nevertheless the full MPMC-safe variant, so a torture test
// can hammer it with arbitrary thread interleavings under TSan.
//
// Capacity is rounded up to a power of two.  try_push fails when the
// ring is full (the engine then makes progress by draining its own
// inbox -- see engine.cpp -- which is what makes the barrier protocol
// deadlock-free under bounded queues).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace bcn::sim::shard {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity = 1 << 12) {
    std::size_t pow2 = 1;
    while (pow2 < capacity) pow2 <<= 1;
    cells_ = std::vector<Cell>(pow2);
    mask_ = pow2 - 1;
    for (std::size_t i = 0; i < pow2; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Producer side (any thread).  False when the ring is full.
  bool try_push(const T& value) {
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(ticket);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // ticket reloaded by the failed CAS; retry with the new one.
      } else if (diff < 0) {
        return false;  // full: the cell still holds an unconsumed value
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Consumer side (the owner shard only).  False when empty.
  bool try_pop(T& out) {
    Cell& cell = cells_[head_ & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::ptrdiff_t>(seq) -
                      static_cast<std::ptrdiff_t>(head_ + 1);
    if (diff < 0) return false;  // not yet published
    out = cell.value;
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  // Producers share tail_; head_ belongs to the single consumer (plain,
  // because only one thread ever touches it).
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t head_ = 0;
};

}  // namespace bcn::sim::shard
