// Fabric entities for the sharded engine: output-port queues and paced
// sources over a generated Topology (sim/shard/topology.h).
//
// The determinism contract: an entity NEVER schedules an event on
// another entity directly.  Every inter-entity handoff -- frame hop,
// reverse-path BCN -- is staged as a TransferRecord through its shard's
// TransferSink, and the engine injects each epoch's records into the
// owning shard's Simulator in the canonical order sorted by
// (deliver_at, src_gid, src_seq).  That key is a pure function of the
// workload, so the injected order -- and therefore every FIFO tie-break
// inside any Simulator -- is identical for every shard count, including
// the degenerate single-shard run.  Intra-entity timers (service
// completions, pacing tokens) go straight into the local Simulator; they
// touch only their owner's state, so their interleaving is irrelevant.
//
// Fabric ports implement the paper's baseline congestion point: drop-tail
// FIFO, deterministic 1/pm arrival sampling, sigma per eq. (1), BCN of
// either sign back to the sampled frame's source.  PAUSE, fault
// injection, and pluggable mechanisms stay in the single-topology layer
// for now (the reaction point does reuse RateRegulator, so the source
// side runs the exact fluid-matched BCN law).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "obs/monitor.h"
#include "sim/event_queue.h"
#include "sim/rate_regulator.h"
#include "sim/shard/topology.h"

namespace bcn::sim::shard {

// One staged inter-entity handoff.  Global entity ids (gids) number the
// ports [0, P) and the flow sources [P, P + F).  src_seq is the sender's
// own monotone counter, so the sort key (deliver_at, src_gid, src_seq)
// is unique and shard-invariant.
struct TransferRecord {
  SimTime deliver_at = 0;
  std::uint32_t dst_gid = 0;
  std::uint32_t src_gid = 0;
  std::uint64_t src_seq = 0;
  EventKind kind = EventKind::FrameArrival;
  EventPayload payload;
};

inline bool transfer_before(const TransferRecord& a, const TransferRecord& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.src_gid != b.src_gid) return a.src_gid < b.src_gid;
  return a.src_seq < b.src_seq;
}

// Where entities stage their outgoing handoffs; implemented by the
// engine's Shard (engine.cpp), which routes to a local epoch bucket or a
// cross-shard MPSC inbox.
class TransferSink {
 public:
  virtual void stage(const TransferRecord& record) = 0;

 protected:
  ~TransferSink() = default;
};

struct FabricPortCounters {
  std::uint64_t arrivals = 0;
  std::uint64_t drops = 0;
  std::uint64_t samples = 0;
  std::uint64_t bcn_sent = 0;
  std::uint64_t forwarded = 0;          // departures continuing downstream
  std::uint64_t delivered_frames = 0;   // departures terminating here
  double delivered_bits = 0.0;
  double peak_queue_bits = 0.0;
};

// A directional output port: FIFO drop-tail queue draining at the link
// capacity, sampling + BCN per the paper's congestion point.  Receives
// injected FrameArrival events and its own FrameDeparture timer.
class FabricPort final : public EventTarget {
 public:
  void init(Simulator* sim, TransferSink* sink, const Topology* topo,
            std::uint32_t gid, std::uint32_t source_gid_base, double q0,
            double w, std::uint64_t sample_every, obs::RunMonitor* monitor);

  void on_event(const SimEvent& event) override;

  double queue_bits() const { return queue_bits_; }
  const FabricPortCounters& counters() const { return counters_; }

 private:
  void on_arrival(const Frame& frame);
  void start_service();
  void finish_service();
  void maybe_sample(const Frame& frame);

  SimTime service_time(double bits) {
    if (bits != service_bits_) {
      service_bits_ = bits;
      service_gap_ = transmission_time(bits, capacity_);
    }
    return service_gap_;
  }

  Simulator* sim_ = nullptr;
  TransferSink* sink_ = nullptr;
  const Topology* topo_ = nullptr;
  obs::RunMonitor* monitor_ = nullptr;
  std::uint32_t gid_ = 0;
  std::uint32_t source_gid_base_ = 0;
  double capacity_ = 10e9;
  double buffer_bits_ = 5e6;
  double q0_ = 2.5e6;
  double w_ = 2.0;
  std::uint64_t sample_every_ = 100;

  std::deque<Frame> queue_;
  double queue_bits_ = 0.0;
  double service_bits_ = -1.0;
  SimTime service_gap_ = 0;
  bool serving_ = false;
  EventId depart_timer_ = kInvalidEvent;

  std::uint64_t arrivals_since_sample_ = 0;
  double queue_at_last_sample_ = 0.0;
  std::uint64_t src_seq_ = 0;  // staging counter (sort-key component)
  FabricPortCounters counters_;
};

// One flow's sending host: a paced token loop over a RateRegulator
// running the fluid-matched BCN reaction law.  Receives its own
// SourceToken timer and injected BcnDelivery events.
class FabricSource final : public EventTarget {
 public:
  void init(Simulator* sim, TransferSink* sink, const Topology* topo,
            std::uint32_t flow_id, std::uint32_t gid,
            const RegulatorConfig& config, double initial_rate);

  // Schedules the first pacing token at t = 0.
  void start();

  void on_event(const SimEvent& event) override;

  double rate() const { return regulator_->rate(); }
  std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void emit_frame();

  SimTime pacing_gap() {
    const double r = regulator_->rate();
    if (r != gap_rate_) {
      gap_rate_ = r;
      gap_ = transmission_time(frame_bits_, r);
    }
    return gap_;
  }

  Simulator* sim_ = nullptr;
  TransferSink* sink_ = nullptr;
  const Topology* topo_ = nullptr;
  std::uint32_t flow_id_ = 0;
  std::uint32_t gid_ = 0;
  double frame_bits_ = 12000.0;
  std::optional<RateRegulator> regulator_;
  double gap_rate_ = -1.0;
  SimTime gap_ = 0;
  EventId token_ = kInvalidEvent;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t src_seq_ = 0;
};

}  // namespace bcn::sim::shard
