#include "sim/shard/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>

#include "exec/thread_pool.h"
#include "sim/shard/fabric.h"
#include "sim/shard/mpsc_queue.h"

namespace bcn::sim::shard {
namespace {

// Same FNV-1a as the PR 4 trajectory digest (tests/sim/determinism_test).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix_u64(h, bits);
}

// Sense-reversing epoch barrier.  `idle` runs in the wait loop so a
// blocked shard keeps draining its inbox (bounded-queue liveness);
// yield keeps the protocol usable when shards outnumber cores.
class EpochBarrier {
 public:
  explicit EpochBarrier(int parties) : parties_(parties) {}

  template <typename Idle>
  void arrive_and_wait(bool* sense, Idle&& idle) {
    const bool my = !*sense;
    *sense = my;
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(my, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my) {
        idle();
        std::this_thread::yield();
      }
    }
  }

 private:
  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<bool> sense_{false};
};

struct Shared {
  const Topology* topo = nullptr;
  const FabricOptions* options = nullptr;
  SimTime quantum = 1;
  std::uint64_t total_epochs = 0;
  std::uint64_t sample_every_epochs = 1;
  std::uint64_t total_samples = 0;
  std::uint32_t source_gid_base = 0;  // ports are [0, base), sources after
  std::vector<std::uint32_t> shard_of_gid;
  std::vector<EventTarget*> targets;  // by gid; read-only while running
  std::vector<std::unique_ptr<MpscQueue<TransferRecord>>> inboxes;
  std::unique_ptr<EpochBarrier> barrier;
};

class Shard final : public TransferSink {
 public:
  Simulator sim;
  int index = 0;
  Shared* shared = nullptr;
  std::vector<FabricPort> ports;       // local, in gid order
  std::vector<FabricSource> sources;   // local, in flow-id order
  std::vector<std::uint32_t> port_gids;
  std::vector<std::uint32_t> flow_ids;
  std::vector<std::vector<TransferRecord>> buckets;  // epoch ring
  std::vector<std::uint64_t> bucket_epoch;  // absolute epoch per ring slot
  std::size_t ring = 1;
  bool sense = false;
  std::uint64_t staged = 0;
  std::uint64_t cross = 0;
  obs::RunMonitor monitor;
  FabricPort* trace_port = nullptr;    // set on the owning shard only
  std::vector<double> queue_partial;   // per sample: sum of local ports
  std::vector<double> trace_partial;   // per sample: trace-port occupancy

  void stage(const TransferRecord& record) override {
    ++staged;
    const std::uint32_t dst = shared->shard_of_gid[record.dst_gid];
    if (static_cast<int>(dst) == index) {
      bucket_of(record.deliver_at).push_back(record);
      return;
    }
    ++cross;
    MpscQueue<TransferRecord>& inbox = *shared->inboxes[dst];
    while (!inbox.try_push(record)) {
      // A full inbox means the peer is behind; make progress by freeing
      // our own inbox so whoever is pushing at us can advance too.
      drain_inbox();
      std::this_thread::yield();
    }
  }

  std::vector<TransferRecord>& bucket_of(SimTime deliver_at) {
    const auto epoch =
        static_cast<std::uint64_t>(deliver_at / shared->quantum);
    const auto slot = static_cast<std::size_t>(epoch % ring);
    // The ring is deeper than the longest delivery horizon, so every
    // record landing in a slot shares one absolute epoch.
    bucket_epoch[slot] = epoch;
    return buckets[slot];
  }

  void drain_inbox() {
    MpscQueue<TransferRecord>& inbox = *shared->inboxes[index];
    TransferRecord record;
    while (inbox.try_pop(record)) {
      bucket_of(record.deliver_at).push_back(record);
    }
  }

  // Canonical injection: the epoch's records sorted by the shard-
  // invariant key, so the Simulator's FIFO tie-break reproduces the same
  // global order on every shard count.
  void inject(std::uint64_t epoch) {
    std::vector<TransferRecord>& bucket = buckets[epoch % ring];
    if (bucket.empty()) return;
    if (bucket.size() > 1) {
      std::sort(bucket.begin(), bucket.end(), transfer_before);
    }
    for (const TransferRecord& record : bucket) {
      EventTarget* target = shared->targets[record.dst_gid];
      if (record.kind == EventKind::FrameArrival) {
        sim.schedule_frame(record.deliver_at, target, 0,
                           record.payload.frame);
      } else {
        sim.schedule_bcn(record.deliver_at, target, 0, record.payload.bcn);
      }
    }
    bucket.clear();
  }

  void sample(std::uint64_t sample_index, SimTime t) {
    double sum = 0.0;
    for (const FabricPort& port : ports) sum += port.queue_bits();
    queue_partial[sample_index] = sum;
    if (trace_port) trace_partial[sample_index] = trace_port->queue_bits();
    if (monitor.armed()) {
      obs::MonitorSample s;
      s.t = to_seconds(t);
      s.queue_bits = sum;
      double rate = 0.0;
      for (const FabricSource& src : sources) {
        rate += src.rate();
        s.frames_sent += src.frames_sent();
      }
      s.aggregate_rate = rate;
      for (const FabricPort& port : ports) {
        const FabricPortCounters& c = port.counters();
        s.frames_enqueued += c.arrivals - c.drops;
        s.frames_dropped += c.drops;
        s.frames_delivered += c.delivered_frames;
        s.bits_delivered += c.delivered_bits;
      }
      monitor.on_sample(s);
    }
  }

  void run_epoch(std::uint64_t e) {
    const SimTime q = shared->quantum;
    inject(e);
    sim.run_until(static_cast<SimTime>(e + 1) * q - 1);
    if ((e + 1) % shared->sample_every_epochs == 0) {
      const std::uint64_t s = (e + 1) / shared->sample_every_epochs - 1;
      if (s < shared->total_samples) {
        sample(s, static_cast<SimTime>(e + 1) * q);
      }
    }
  }

  void run() {
    for (std::uint64_t e = 0; e < shared->total_epochs; ++e) {
      drain_inbox();
      run_epoch(e);
      shared->barrier->arrive_and_wait(&sense, [this] { drain_inbox(); });
    }
  }

  // Single-shard fast path: no inbox, no barrier, and empty epochs are
  // skipped wholesale by peeking the next event deadline and the pending
  // buckets.  Skips are clamped to the next sample boundary, and nothing
  // observable happens in a skipped epoch, so the trajectory (and the
  // digest) match the barrier loop exactly.
  void run_single() {
    const std::uint64_t q = static_cast<std::uint64_t>(shared->quantum);
    const std::uint64_t se = shared->sample_every_epochs;
    const std::uint64_t total = shared->total_epochs;
    for (std::uint64_t e = 0; e < total;) {
      run_epoch(e);
      std::uint64_t next = total;
      if (!sim.idle()) {
        next = std::min(
            next, static_cast<std::uint64_t>(sim.next_event_time()) / q);
      }
      for (std::size_t i = 0; i < ring; ++i) {
        if (!buckets[i].empty()) next = std::min(next, bucket_epoch[i]);
      }
      next = std::min(next, ((e + 1) / se + 1) * se - 1);  // sample boundary
      e = std::max(e + 1, next);
    }
  }
};

}  // namespace

FabricResult run_fabric(const Topology& topo, const FabricOptions& options,
                        int shard_count) {
  const int S = std::max(1, shard_count);
  const auto P = static_cast<std::uint32_t>(topo.ports.size());
  const auto F = static_cast<std::uint32_t>(topo.flows.size());

  Shared shared;
  shared.topo = &topo;
  shared.options = &options;
  shared.quantum = std::max<SimTime>(1, topo.link_delay);
  shared.total_epochs = static_cast<std::uint64_t>(
      (options.duration + shared.quantum - 1) / shared.quantum);
  shared.sample_every_epochs = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(options.sample_interval / shared.quantum));
  shared.total_samples = shared.total_epochs / shared.sample_every_epochs;
  shared.source_gid_base = P;

  const Partition part = partition_topology(topo, S);
  shared.shard_of_gid.resize(P + F);
  for (std::uint32_t p = 0; p < P; ++p) {
    shared.shard_of_gid[p] = part.shard_of_port[p];
  }
  for (std::uint32_t f = 0; f < F; ++f) {
    shared.shard_of_gid[P + f] = part.shard_of_flow[f];
  }
  shared.targets.assign(P + F, nullptr);
  shared.inboxes.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    shared.inboxes.push_back(
        std::make_unique<MpscQueue<TransferRecord>>(1 << 14));
  }
  shared.barrier = std::make_unique<EpochBarrier>(S);

  const std::uint64_t sample_every_arrivals = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / options.pm)));
  const std::uint32_t trace_gid = std::min(options.trace_port, P - 1);

  // --- build shards (single-threaded) ------------------------------------
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    shards.push_back(std::make_unique<Shard>());
    Shard& shard = *shards.back();
    shard.index = s;
    shard.shared = &shared;
    shard.ring = topo.max_route_length() + 3;
    shard.buckets.resize(shard.ring);
    shard.bucket_epoch.assign(shard.ring, 0);
    shard.queue_partial.assign(shared.total_samples, 0.0);
    for (std::uint32_t p = 0; p < P; ++p) {
      if (shared.shard_of_gid[p] == static_cast<std::uint32_t>(s)) {
        shard.port_gids.push_back(p);
      }
    }
    for (std::uint32_t f = 0; f < F; ++f) {
      if (shared.shard_of_gid[P + f] == static_cast<std::uint32_t>(s)) {
        shard.flow_ids.push_back(f);
      }
    }
    // Exact sizing before init: entity pointers enter the target table.
    shard.ports.resize(shard.port_gids.size());
    shard.sources.resize(shard.flow_ids.size());

    obs::RunMonitor* monitor = nullptr;
    if (options.monitors.any()) {
      obs::MonitorConfig mc;
      mc.spec = options.monitors;
      mc.action = obs::ViolationAction::Record;
      // The watchdog watches shard-local delivery; a shard owning no
      // terminal (last-hop) port never delivers, so arming it there
      // would trip on sound runs.
      bool owns_terminal = false;
      for (std::uint32_t f = 0; f < F && !owns_terminal; ++f) {
        const std::uint32_t last = topo.route(f)[topo.route_length(f) - 1];
        owns_terminal = shared.shard_of_gid[last] ==
                        static_cast<std::uint32_t>(s);
      }
      if (!owns_terminal) mc.spec.watchdog = false;
      shard.monitor.configure(mc);
      // The bound serves both the per-frame check (one port) and the
      // per-sample check (the shard's aggregate occupancy), so it is the
      // sum of local buffers: the only bound that is valid for the
      // aggregate.  Per-port overflow is enforced by drop-tail anyway;
      // this monitor exists to catch runaway accounting.
      double buffer_sum = 0.0;
      for (const std::uint32_t p : shard.port_gids) {
        buffer_sum += topo.ports[p].buffer_bits;
      }
      shard.monitor.set_queue_bound(buffer_sum);
      shard.monitor.set_rate_bound(
          static_cast<double>(shard.flow_ids.size()) *
          options.regulator.max_rate);
      monitor = &shard.monitor;
    }

    for (std::size_t i = 0; i < shard.port_gids.size(); ++i) {
      const std::uint32_t gid = shard.port_gids[i];
      shard.ports[i].init(&shard.sim, &shard, &topo, gid, P, options.q0,
                          options.w, sample_every_arrivals, monitor);
      shared.targets[gid] = &shard.ports[i];
      if (gid == trace_gid) {
        shard.trace_port = &shard.ports[i];
        shard.trace_partial.assign(shared.total_samples, 0.0);
      }
    }
    for (std::size_t i = 0; i < shard.flow_ids.size(); ++i) {
      const std::uint32_t f = shard.flow_ids[i];
      shard.sources[i].init(&shard.sim, &shard, &topo, f, P + f,
                            options.regulator, options.initial_rate);
      shared.targets[P + f] = &shard.sources[i];
      shard.sources[i].start();
    }
  }

  // --- run ----------------------------------------------------------------
  if (S == 1) {
    shards[0]->run_single();
  } else {
    exec::ThreadPool pool(S, /*pin_to_core=*/true);
    for (int s = 0; s < S; ++s) {
      Shard* shard = shards[static_cast<std::size_t>(s)].get();
      pool.submit([shard] { shard->run(); });
    }
    pool.wait_idle();
  }

  // --- deterministic merge (single-threaded, gid order) -------------------
  FabricResult result;
  result.shards = S;
  result.epochs = shared.total_epochs;

  std::vector<const FabricPort*> port_by_gid(P, nullptr);
  std::vector<const FabricSource*> source_by_flow(F, nullptr);
  for (const auto& shard : shards) {
    result.events_executed += shard->sim.executed();
    result.staged_records += shard->staged;
    result.cross_shard_records += shard->cross;
    for (std::size_t i = 0; i < shard->port_gids.size(); ++i) {
      port_by_gid[shard->port_gids[i]] = &shard->ports[i];
    }
    for (std::size_t i = 0; i < shard->flow_ids.size(); ++i) {
      source_by_flow[shard->flow_ids[i]] = &shard->sources[i];
    }
  }

  std::uint64_t h = kFnvOffset;
  h = mix_u64(h, shared.total_epochs);
  for (std::uint32_t p = 0; p < P; ++p) {
    const FabricPortCounters& c = port_by_gid[p]->counters();
    result.frames_dropped += c.drops;
    result.frames_delivered += c.delivered_frames;
    result.frames_forwarded += c.forwarded;
    result.frames_sampled += c.samples;
    result.bcn_sent += c.bcn_sent;
    result.bits_delivered += c.delivered_bits;
    h = mix_u64(h, c.arrivals);
    h = mix_u64(h, c.drops);
    h = mix_u64(h, c.samples);
    h = mix_u64(h, c.bcn_sent);
    h = mix_u64(h, c.forwarded);
    h = mix_u64(h, c.delivered_frames);
    h = mix_double(h, c.delivered_bits);
    h = mix_double(h, c.peak_queue_bits);
    h = mix_double(h, port_by_gid[p]->queue_bits());
  }
  result.flow_stats.resize(F);
  for (std::uint32_t f = 0; f < F; ++f) {
    result.flow_stats[f].frames_sent = source_by_flow[f]->frames_sent();
    result.flow_stats[f].rate = source_by_flow[f]->rate();
    result.frames_sent += result.flow_stats[f].frames_sent;
    h = mix_u64(h, result.flow_stats[f].frames_sent);
    h = mix_double(h, result.flow_stats[f].rate);
  }

  result.trace_queue.assign(shared.total_samples, 0.0);
  result.total_queue.assign(shared.total_samples, 0.0);
  for (const auto& shard : shards) {
    if (shard->trace_port) result.trace_queue = shard->trace_partial;
    // Queue bits are integer-valued doubles (multiples of the frame
    // size) well below 2^53, so per-shard partial sums add exactly in
    // any order -- the merged series cannot depend on the partition.
    for (std::uint64_t i = 0; i < shared.total_samples; ++i) {
      result.total_queue[i] += shard->queue_partial[i];
    }
  }
  for (const double v : result.trace_queue) h = mix_double(h, v);
  for (const double v : result.total_queue) h = mix_double(h, v);
  h = mix_u64(h, result.staged_records);
  h = mix_u64(h, result.events_executed);
  result.digest = h;

  // Monitor fold: shard 0's monitor absorbs the rest; merge_from orders
  // violations by (t, invariant, message), not by arrival thread.
  if (options.monitors.any()) {
    obs::RunMonitor& merged = shards[0]->monitor;
    for (std::size_t s = 1; s < shards.size(); ++s) {
      merged.merge_from(shards[s]->monitor);
    }
    result.monitor_checks = merged.checks();
    result.monitor_violations = merged.violation_count();
    result.violations = merged.violations();
  }
  return result;
}

}  // namespace bcn::sim::shard
