#include "sim/shard/fabric.h"

#include <algorithm>
#include <cmath>

namespace bcn::sim::shard {

// --- FabricPort ----------------------------------------------------------

void FabricPort::init(Simulator* sim, TransferSink* sink,
                      const Topology* topo, std::uint32_t gid,
                      std::uint32_t source_gid_base, double q0, double w,
                      std::uint64_t sample_every, obs::RunMonitor* monitor) {
  sim_ = sim;
  sink_ = sink;
  topo_ = topo;
  monitor_ = monitor;
  gid_ = gid;
  source_gid_base_ = source_gid_base;
  capacity_ = topo->ports[gid].capacity;
  buffer_bits_ = topo->ports[gid].buffer_bits;
  q0_ = q0;
  w_ = w;
  sample_every_ = std::max<std::uint64_t>(1, sample_every);
}

void FabricPort::on_event(const SimEvent& event) {
  switch (event.kind) {
    case EventKind::FrameArrival:
      on_arrival(event.payload.frame);
      break;
    case EventKind::FrameDeparture:
      finish_service();
      break;
    default:
      break;
  }
}

void FabricPort::on_arrival(const Frame& frame) {
  ++counters_.arrivals;
  maybe_sample(frame);
  if (queue_bits_ + frame.size_bits > buffer_bits_) {
    ++counters_.drops;
    return;
  }
  queue_.push_back(frame);
  queue_bits_ += frame.size_bits;
  counters_.peak_queue_bits = std::max(counters_.peak_queue_bits, queue_bits_);
  if (monitor_) {
    monitor_->check_queue(to_seconds(sim_->now()), gid_, queue_bits_);
  }
  if (!serving_) start_service();
}

void FabricPort::maybe_sample(const Frame& frame) {
  if (++arrivals_since_sample_ < sample_every_) return;
  arrivals_since_sample_ = 0;
  ++counters_.samples;

  // Eq. (1): sigma = (q0 - q) - w * delta_q over the sampling interval.
  const double delta_q = queue_bits_ - queue_at_last_sample_;
  queue_at_last_sample_ = queue_bits_;
  const double sigma = (q0_ - queue_bits_) - w_ * delta_q;

  // Reverse path: the frame crossed hop+1 links to reach this port, and
  // the BCN retraces them.  The delay is a multiple of link_delay, so the
  // delivery always lands at or past the next epoch boundary (the
  // conservative-lookahead requirement).
  const SimTime back = static_cast<SimTime>(frame.hop + 1) * topo_->link_delay;
  TransferRecord record;
  record.deliver_at = sim_->now() + back;
  record.dst_gid = source_gid_base_ + frame.source;
  record.src_gid = gid_;
  record.src_seq = src_seq_++;
  record.kind = EventKind::BcnDelivery;
  record.payload.bcn = BcnMessage{.cpid = gid_, .target = frame.source,
                                  .sigma = sigma, .sent_at = sim_->now()};
  sink_->stage(record);
  ++counters_.bcn_sent;
}

void FabricPort::start_service() {
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  serving_ = true;
  depart_timer_ = sim_->arm(
      depart_timer_, sim_->now() + service_time(queue_.front().size_bits),
      this, EventKind::FrameDeparture, 0);
}

void FabricPort::finish_service() {
  Frame frame = queue_.front();
  queue_.pop_front();
  queue_bits_ -= frame.size_bits;
  queue_bits_ = std::max(queue_bits_, 0.0);
  if (monitor_) {
    monitor_->check_queue(to_seconds(sim_->now()), gid_, queue_bits_);
  }
  const std::size_t flow = frame.source;
  if (frame.hop + 1 < topo_->route_length(flow)) {
    ++counters_.forwarded;
    ++frame.hop;
    TransferRecord record;
    record.deliver_at = sim_->now() + topo_->link_delay;
    record.dst_gid = topo_->route(flow)[frame.hop];
    record.src_gid = gid_;
    record.src_seq = src_seq_++;
    record.kind = EventKind::FrameArrival;
    record.payload.frame = frame;
    sink_->stage(record);
  } else {
    ++counters_.delivered_frames;
    counters_.delivered_bits += frame.size_bits;
  }
  start_service();
}

// --- FabricSource --------------------------------------------------------

void FabricSource::init(Simulator* sim, TransferSink* sink,
                        const Topology* topo, std::uint32_t flow_id,
                        std::uint32_t gid, const RegulatorConfig& config,
                        double initial_rate) {
  sim_ = sim;
  sink_ = sink;
  topo_ = topo;
  flow_id_ = flow_id;
  gid_ = gid;
  frame_bits_ = config.frame_bits;
  regulator_.emplace(config, initial_rate, sim->now());
}

void FabricSource::start() {
  token_ = sim_->arm(token_, sim_->now(), this, EventKind::SourceToken, 0);
}

void FabricSource::on_event(const SimEvent& event) {
  switch (event.kind) {
    case EventKind::SourceToken:
      emit_frame();
      // Rate changes land on the *next* gap; the frame just sent was
      // already committed at the old pacing.
      sim_->reschedule(token_, sim_->now() + pacing_gap());
      break;
    case EventKind::BcnDelivery:
      regulator_->on_bcn(event.payload.bcn, sim_->now());
      break;
    default:
      break;
  }
}

void FabricSource::emit_frame() {
  Frame frame;
  frame.source = flow_id_;
  frame.dst = topo_->flows[flow_id_].dst_host;
  frame.size_bits = frame_bits_;
  frame.seq = frames_sent_;
  frame.has_rrt = regulator_->is_associated();
  frame.rrt_cpid = regulator_->cpid();
  frame.hop = 0;
  frame.sent_at = sim_->now();
  ++frames_sent_;

  TransferRecord record;
  record.deliver_at = sim_->now() + topo_->link_delay;
  record.dst_gid = topo_->route(flow_id_)[0];
  record.src_gid = gid_;
  record.src_seq = src_seq_++;
  record.kind = EventKind::FrameArrival;
  record.payload.frame = frame;
  sink_->stage(record);
}

}  // namespace bcn::sim::shard
