#include "sim/shard/topology.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace bcn::sim::shard {
namespace {

// splitmix64: the deterministic stand-in for ECMP path hashing.  Routes
// must not depend on anything but the flow id and topology shape.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t Topology::max_route_length() const {
  std::size_t longest = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    longest = std::max(longest, route_length(f));
  }
  return longest;
}

std::uint32_t Topology::edge_of_host(std::uint32_t host) const {
  return static_cast<std::uint32_t>(host / hosts_per_edge_);
}

// --- fat-tree ------------------------------------------------------------
//
// Switch ids: edge(p, e) = p*h + e; agg(p, a) = E + p*h + a;
// core(c) = 2E + c, with h = k/2, E = k*h, c in [0, h^2).  Core c
// attaches to agg index g = c / h in every pod.  Port ids are allocated
// contiguously per switch in switch-id order:
//   edge(p, e): h host-down ports (slot s), then h up ports (to agg a)
//   agg(p, a):  h down ports (to edge e), then h up ports (to core j of
//               its group, j in [0, h))
//   core(c):    k down ports (to pod p)
Topology make_fat_tree(const FatTreeOptions& options) {
  const int k = std::max(2, options.k - (options.k % 2));
  const std::uint32_t h = static_cast<std::uint32_t>(k) / 2;
  const std::uint32_t edges = static_cast<std::uint32_t>(k) * h;
  const std::uint32_t aggs = edges;
  const std::uint32_t cores = h * h;
  const double uplink_rate = options.link_rate / options.oversubscription;

  Topology topo;
  topo.name = "fat-tree:" + std::to_string(k);
  topo.num_hosts = static_cast<std::size_t>(edges) * h;
  topo.host_rate = options.host_rate;
  topo.link_delay = options.link_delay;
  topo.hosts_per_edge_ = h;

  topo.switches.resize(edges + aggs + cores);
  for (std::uint32_t i = 0; i < edges; ++i) {
    topo.switches[i] = {SwitchLevel::Edge, static_cast<std::int32_t>(i / h)};
  }
  for (std::uint32_t i = 0; i < aggs; ++i) {
    topo.switches[edges + i] = {SwitchLevel::Aggregation,
                                static_cast<std::int32_t>(i / h)};
  }
  for (std::uint32_t i = 0; i < cores; ++i) {
    topo.switches[edges + aggs + i] = {SwitchLevel::Core, -1};
  }

  // Every switch owns a fixed port block; precompute the bases.
  const std::uint32_t ports_per_edge = 2 * h;  // h host-down + h up
  const std::uint32_t ports_per_agg = 2 * h;   // h down + h up
  const std::uint32_t edge_base = 0;
  const std::uint32_t agg_base = edges * ports_per_edge;
  const std::uint32_t core_base = agg_base + aggs * ports_per_agg;
  topo.ports.resize(core_base + cores * static_cast<std::uint32_t>(k));
  for (std::uint32_t e = 0; e < edges; ++e) {
    for (std::uint32_t s = 0; s < h; ++s) {  // down to host slot s
      topo.ports[edge_base + e * ports_per_edge + s] = {
          e, options.host_rate, options.buffer_bits};
    }
    for (std::uint32_t a = 0; a < h; ++a) {  // up to agg a
      topo.ports[edge_base + e * ports_per_edge + h + a] = {
          e, uplink_rate, options.buffer_bits};
    }
  }
  for (std::uint32_t a = 0; a < aggs; ++a) {
    for (std::uint32_t e = 0; e < h; ++e) {  // down to edge e of its pod
      topo.ports[agg_base + a * ports_per_agg + e] = {
          edges + a, options.link_rate, options.buffer_bits};
    }
    for (std::uint32_t j = 0; j < h; ++j) {  // up to core j of its group
      topo.ports[agg_base + a * ports_per_agg + h + j] = {
          edges + a, uplink_rate, options.buffer_bits};
    }
  }
  for (std::uint32_t c = 0; c < cores; ++c) {
    for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(k); ++p) {
      topo.ports[core_base + c * k + p] = {edges + aggs + c,
                                           options.link_rate,
                                           options.buffer_bits};
    }
  }

  topo.route_offset.push_back(0);
  return topo;
}

namespace {

// Route resolution shares the port-numbering scheme above.
struct FatTreeShape {
  std::uint32_t h, k, edges, ports_per_sw, agg_base, core_base;
};

void fat_tree_route(const Topology& topo, const FatTreeShape& ft,
                    std::uint32_t flow_id, std::uint32_t src,
                    std::uint32_t dst, std::vector<std::uint32_t>& hops) {
  const std::uint32_t e1 = src / ft.h, e2 = dst / ft.h;
  const std::uint32_t p1 = e1 / ft.h, p2 = e2 / ft.h;
  const std::uint64_t hash = mix64(flow_id);
  const auto edge_up = [&](std::uint32_t e, std::uint32_t a) {
    return e * ft.ports_per_sw + ft.h + a;
  };
  const auto edge_down = [&](std::uint32_t e, std::uint32_t s) {
    return e * ft.ports_per_sw + s;
  };
  const auto agg_down = [&](std::uint32_t p, std::uint32_t a,
                            std::uint32_t e) {
    return ft.agg_base + (p * ft.h + a) * ft.ports_per_sw + e;
  };
  const auto agg_up = [&](std::uint32_t p, std::uint32_t a, std::uint32_t j) {
    return ft.agg_base + (p * ft.h + a) * ft.ports_per_sw + ft.h + j;
  };
  if (e1 == e2) {  // same edge switch: one queueing hop, the host port
    hops.push_back(edge_down(e2, dst % ft.h));
    return;
  }
  const auto a = static_cast<std::uint32_t>(hash % ft.h);
  if (p1 == p2) {  // same pod: up to one agg and back down
    hops.push_back(edge_up(e1, a));
    hops.push_back(agg_down(p1, a, e2 % ft.h));
    hops.push_back(edge_down(e2, dst % ft.h));
    return;
  }
  // Cross-pod: agg a then core a*h + j; core group a descends into agg a
  // of the destination pod.
  const auto j = static_cast<std::uint32_t>((hash >> 32) % ft.h);
  hops.push_back(edge_up(e1, a));
  hops.push_back(agg_up(p1, a, j));
  hops.push_back(ft.core_base + (a * ft.h + j) * ft.k + p2);
  hops.push_back(agg_down(p2, a, e2 % ft.h));
  hops.push_back(edge_down(e2, dst % ft.h));
}

}  // namespace

// --- leaf-spine ----------------------------------------------------------
//
// Switch ids: leaf(l) = l, spine(s) = L + s.  Ports: leaf l owns H
// host-down ports then S up ports; spine s owns L down ports.
Topology make_leaf_spine(const LeafSpineOptions& options) {
  const auto S = static_cast<std::uint32_t>(std::max(1, options.spines));
  const auto L = static_cast<std::uint32_t>(std::max(1, options.leaves));
  const auto H = static_cast<std::uint32_t>(std::max(1, options.hosts_per_leaf));
  const double uplink_rate =
      H * options.host_rate / (S * options.oversubscription);

  Topology topo;
  topo.name = "leaf-spine:" + std::to_string(S) + "x" + std::to_string(L) +
              "x" + std::to_string(H);
  topo.num_hosts = static_cast<std::size_t>(L) * H;
  topo.host_rate = options.host_rate;
  topo.link_delay = options.link_delay;
  topo.hosts_per_edge_ = H;

  topo.switches.resize(L + S);
  for (std::uint32_t l = 0; l < L; ++l) {
    topo.switches[l] = {SwitchLevel::Edge, static_cast<std::int32_t>(l)};
  }
  for (std::uint32_t s = 0; s < S; ++s) {
    topo.switches[L + s] = {SwitchLevel::Core, -1};
  }

  const std::uint32_t ports_per_leaf = H + S;
  const std::uint32_t spine_base = L * ports_per_leaf;
  topo.ports.resize(spine_base + S * L);
  for (std::uint32_t l = 0; l < L; ++l) {
    for (std::uint32_t s = 0; s < H; ++s) {
      topo.ports[l * ports_per_leaf + s] = {l, options.host_rate,
                                            options.buffer_bits};
    }
    for (std::uint32_t s = 0; s < S; ++s) {
      topo.ports[l * ports_per_leaf + H + s] = {l, uplink_rate,
                                                options.buffer_bits};
    }
  }
  for (std::uint32_t s = 0; s < S; ++s) {
    for (std::uint32_t l = 0; l < L; ++l) {
      topo.ports[spine_base + s * L + l] = {L + s, uplink_rate,
                                            options.buffer_bits};
    }
  }

  topo.route_offset.push_back(0);
  return topo;
}

// --- star ----------------------------------------------------------------

Topology make_star(const StarOptions& options) {
  Topology topo;
  topo.name = "star:" + std::to_string(options.hosts);
  topo.num_hosts = static_cast<std::size_t>(std::max(1, options.hosts));
  topo.host_rate = options.host_rate;
  topo.link_delay = options.link_delay;
  topo.hosts_per_edge_ = topo.num_hosts;
  topo.switches.push_back({SwitchLevel::Edge, 0});
  topo.ports.push_back({0, options.capacity, options.buffer_bits});
  topo.route_offset.push_back(0);
  return topo;
}

// --- route resolution + flow sets ---------------------------------------

namespace {

void resolve_route(Topology& topo, std::uint32_t flow_id, std::uint32_t src,
                   std::uint32_t dst) {
  if (topo.switches.size() == 1) {  // star: every flow crosses the hub port
    topo.route_hops.push_back(0);
  } else if (topo.switches.back().level == SwitchLevel::Aggregation ||
             (topo.switches.size() > 2 &&
              topo.switches[topo.switches.size() - 1].level ==
                  SwitchLevel::Core &&
              std::any_of(topo.switches.begin(), topo.switches.end(),
                          [](const SwitchNode& sw) {
                            return sw.level == SwitchLevel::Aggregation;
                          }))) {
    // Fat-tree: reconstruct the shape constants from the switch table.
    FatTreeShape ft;
    ft.h = static_cast<std::uint32_t>(
        std::count_if(topo.switches.begin(), topo.switches.end(),
                      [](const SwitchNode& sw) {
                        return sw.level == SwitchLevel::Edge && sw.pod == 0;
                      }));
    ft.k = 2 * ft.h;
    ft.edges = ft.k * ft.h;
    ft.ports_per_sw = 2 * ft.h;
    ft.agg_base = ft.edges * ft.ports_per_sw;
    ft.core_base = 2 * ft.agg_base;
    fat_tree_route(topo, ft, flow_id, src, dst, topo.route_hops);
  } else {
    // Leaf-spine.
    const auto H = static_cast<std::uint32_t>(topo.hosts_per_edge());
    const auto L = static_cast<std::uint32_t>(
        std::count_if(topo.switches.begin(), topo.switches.end(),
                      [](const SwitchNode& sw) {
                        return sw.level == SwitchLevel::Edge;
                      }));
    const auto S = static_cast<std::uint32_t>(topo.switches.size()) - L;
    const std::uint32_t ports_per_leaf = H + S;
    const std::uint32_t spine_base = L * ports_per_leaf;
    const std::uint32_t l1 = src / H, l2 = dst / H;
    if (l1 == l2) {
      topo.route_hops.push_back(l2 * ports_per_leaf + dst % H);
    } else {
      const auto s =
          static_cast<std::uint32_t>(mix64(flow_id) % S);
      topo.route_hops.push_back(l1 * ports_per_leaf + H + s);
      topo.route_hops.push_back(spine_base + s * L + l2);
      topo.route_hops.push_back(l2 * ports_per_leaf + dst % H);
    }
  }
  topo.route_offset.push_back(
      static_cast<std::uint32_t>(topo.route_hops.size()));
}

void add_flow(Topology& topo, std::uint32_t src, std::uint32_t dst) {
  const auto flow_id = static_cast<std::uint32_t>(topo.flows.size());
  topo.flows.push_back({src, dst});
  resolve_route(topo, flow_id, src, dst);
}

}  // namespace

void add_permutation_flows(Topology& topo, int rounds, std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(topo.num_hosts);
  std::vector<std::uint32_t> perm(n);
  for (int r = 0; r < rounds; ++r) {
    for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
    Rng rng(seed + static_cast<std::uint64_t>(r) * 0x9e3779b9ull);
    for (std::uint32_t i = n; i > 1; --i) {  // Fisher-Yates
      std::swap(perm[i - 1], perm[rng.uniform_int(i)]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      // Rotate fixed points away so no host talks to itself.
      const std::uint32_t dst = perm[i] == i ? (i + 1) % n : perm[i];
      if (dst != i) add_flow(topo, i, dst);
    }
  }
}

void add_random_flows(Topology& topo, std::size_t count, std::uint64_t seed) {
  const auto n = static_cast<std::uint64_t>(topo.num_hosts);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_int(n));
    auto dst = static_cast<std::uint32_t>(rng.uniform_int(n));
    if (dst == src) dst = static_cast<std::uint32_t>((dst + 1) % n);
    if (dst == src) continue;  // single-host topology
    add_flow(topo, src, dst);
  }
}

void add_incast_flows(Topology& topo, std::uint32_t dst_host,
                      std::size_t fan_in, std::uint64_t seed) {
  const auto n = static_cast<std::uint64_t>(topo.num_hosts);
  Rng rng(seed);
  std::size_t added = 0;
  while (added < fan_in) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_int(n));
    if (src == dst_host) {
      if (n <= 1) break;
      continue;
    }
    add_flow(topo, src, dst_host);
    ++added;
  }
}

bool parse_topology_spec(const std::string& spec, Topology* out,
                         std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    return fail("expected kind:shape, e.g. fat-tree:8 or leaf-spine:4x16x8");
  }
  const std::string kind = spec.substr(0, colon);
  const std::string shape = spec.substr(colon + 1);
  const auto parse_int = [](const std::string& s, int* value) {
    if (s.empty()) return false;
    int v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
      if (v > 1'000'000) return false;
    }
    *value = v;
    return true;
  };
  if (kind == "fat-tree") {
    FatTreeOptions options;
    if (!parse_int(shape, &options.k) || options.k < 2 || options.k % 2) {
      return fail("fat-tree shape must be an even k >= 2, e.g. fat-tree:8");
    }
    *out = make_fat_tree(options);
    return true;
  }
  if (kind == "leaf-spine") {
    LeafSpineOptions options;
    const auto x1 = shape.find('x');
    const auto x2 = x1 == std::string::npos ? x1 : shape.find('x', x1 + 1);
    if (x2 == std::string::npos ||
        !parse_int(shape.substr(0, x1), &options.spines) ||
        !parse_int(shape.substr(x1 + 1, x2 - x1 - 1), &options.leaves) ||
        !parse_int(shape.substr(x2 + 1), &options.hosts_per_leaf) ||
        options.spines < 1 || options.leaves < 1 ||
        options.hosts_per_leaf < 1) {
      return fail(
          "leaf-spine shape must be SPINESxLEAVESxHOSTS, e.g. "
          "leaf-spine:4x16x8");
    }
    *out = make_leaf_spine(options);
    return true;
  }
  if (kind == "star") {
    StarOptions options;
    if (!parse_int(shape, &options.hosts) || options.hosts < 1) {
      return fail("star shape must be a host count >= 1, e.g. star:50");
    }
    *out = make_star(options);
    return true;
  }
  return fail("unknown topology kind '" + kind +
              "' (known: fat-tree, leaf-spine, star)");
}

Partition partition_topology(const Topology& topo, int shards) {
  Partition part;
  part.shards = std::max(1, shards);
  const auto n = static_cast<std::uint32_t>(part.shards);
  part.shard_of_switch.resize(topo.switches.size());
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    const SwitchNode& sw = topo.switches[i];
    part.shard_of_switch[i] = sw.pod >= 0
                                  ? static_cast<std::uint32_t>(sw.pod) % n
                                  : static_cast<std::uint32_t>(i) % n;
  }
  part.shard_of_port.resize(topo.ports.size());
  for (std::size_t i = 0; i < topo.ports.size(); ++i) {
    part.shard_of_port[i] = part.shard_of_switch[topo.ports[i].switch_id];
  }
  part.shard_of_flow.resize(topo.flows.size());
  for (std::size_t f = 0; f < topo.flows.size(); ++f) {
    part.shard_of_flow[f] = part.shard_of_port[topo.route(f)[0]];
  }
  // Edge-cut accounting: consecutive route hops on different shards.
  for (std::size_t f = 0; f < topo.flows.size(); ++f) {
    const std::uint32_t* hops = topo.route(f);
    for (std::size_t i = 0; i + 1 < topo.route_length(f); ++i) {
      if (part.shard_of_port[hops[i]] != part.shard_of_port[hops[i + 1]]) {
        ++part.cut_edges;
      }
    }
  }
  return part;
}

}  // namespace bcn::sim::shard
