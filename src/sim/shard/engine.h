// Partitioned conservative parallel discrete-event engine.
//
// One Simulator shard per worker thread, each owning a topology
// partition (ports + the sources homed at their ingress edge).  Time
// advances in epochs of a fixed quantum Q; within an epoch every shard
// runs its own event heap -- the unchanged zero-alloc fast path -- and
// all inter-entity handoffs are staged as TransferRecords.  Shards
// synchronize at epoch boundaries with a sense-reversing barrier; no
// null messages are exchanged, because the lookahead is structural:
// every handoff travels at least one link, so a record staged during
// epoch e delivers at or after the start of epoch e+1 and the barrier
// alone makes the exchange safe (conservative PDES with lookahead Q).
//
// THE QUANTUM PIN IS THE DETERMINISM CONTRACT.  Q is pinned to the
// topology's link_delay -- a shard-count-invariant quantity -- and NOT
// to the minimum *cross-shard* delay, which would change with the
// partition and silently re-bucket handoffs.  With uniform-delay
// generators the two coincide, so nothing is lost; what is gained is
// that epoch boundaries, staging buckets, the canonical injection order
// (sorted by (deliver_at, src_gid, src_seq)), and therefore the FNV-1a
// trajectory digest are bitwise-identical for every shard count,
// including 1.  tests/sim/shard_determinism_test.cpp pins this.
//
// Cross-shard records travel over lock-free bounded MPSC inboxes (one
// per shard).  A producer facing a full inbox drains its *own* inbox
// into staging buckets while it spins, and barrier waiters drain too,
// so bounded queues cannot deadlock the epoch protocol.
//
// Observability is per-shard and merged deterministically after the
// join: counters sum; queue-occupancy series add exactly (queue bits
// are integer-valued doubles -- multiples of the frame size -- far
// below 2^53, so addition order cannot perturb them); per-flow rates
// are read in gid order single-threaded.  Each shard owns a private
// RunMonitor; the engine folds them with RunMonitor::merge_from, whose
// output is ordered by (t, invariant, message), not by arrival thread.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/monitor.h"
#include "sim/rate_regulator.h"
#include "sim/shard/topology.h"

namespace bcn::sim::shard {

struct FabricOptions {
  // Congestion-point parameters shared by every port (eq. (1)).
  double q0 = 2.5e6;
  double w = 2.0;
  double pm = 0.01;  // deterministic sampling: every round(1/pm) arrivals
  // Reaction-point law (the fluid-matched BCN regulator).
  RegulatorConfig regulator;
  double initial_rate = 1e9;  // every flow starts here [bits/s]
  SimTime duration = 50 * kMillisecond;
  // Queue-occupancy sampling cadence; rounded up to a whole number of
  // epochs so the sample instants are shard-invariant.
  SimTime sample_interval = kMillisecond;
  std::uint32_t trace_port = 0;  // port whose series enters the digest
  // Per-shard runtime monitors (unarmed by default).  The engine always
  // records violations (never exits mid-run from a worker); callers
  // decide what a non-empty merged violation list means.
  obs::MonitorSpec monitors;
};

struct FabricFlowStats {
  std::uint64_t frames_sent = 0;
  double rate = 0.0;  // final regulator rate [bits/s]
};

struct FabricResult {
  // FNV-1a over the trace-port series, the global queue series, every
  // port's final counters in gid order, and every flow's final stats in
  // gid order.  Bitwise-identical across shard counts.
  std::uint64_t digest = 0;
  std::uint64_t epochs = 0;
  std::uint64_t events_executed = 0;  // summed over shards; invariant
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_sampled = 0;
  std::uint64_t bcn_sent = 0;
  double bits_delivered = 0.0;
  // Handoffs staged (shard-invariant) vs those that crossed a shard
  // boundary (partition-dependent; excluded from digest and artifacts).
  std::uint64_t staged_records = 0;
  std::uint64_t cross_shard_records = 0;
  int shards = 1;

  std::vector<double> trace_queue;  // trace-port occupancy per sample
  std::vector<double> total_queue;  // fabric-wide occupancy per sample
  std::vector<FabricFlowStats> flow_stats;  // indexed by flow id

  // Merged monitor outcome (RunMonitor::merge_from over shards).
  std::uint64_t monitor_checks = 0;
  std::uint64_t monitor_violations = 0;
  std::vector<obs::Violation> violations;
};

// Runs `topo` for options.duration on `shards` shards (clamped to >= 1).
// shards == 1 runs inline on the calling thread; otherwise the engine
// spins up a ThreadPool of exactly `shards` pinned workers.
FabricResult run_fabric(const Topology& topo, const FabricOptions& options,
                        int shards);

}  // namespace bcn::sim::shard
