// Datacenter-scale topology generators for the sharded packet engine.
//
// A Topology describes a generated fabric as flat arrays: switches,
// directional output ports (the queueing entities -- one server per
// egress link, so port contention inside a switch is modeled instead of
// collapsing a 2k-port core switch into one FIFO), a host count, and a
// flow set with fully precomputed routes (each route is the sequence of
// output ports a frame traverses from its ingress edge switch to the
// destination host's edge port).  Routes are resolved at build time with
// a deterministic flow-id hash standing in for ECMP, so a topology is a
// pure function of its options -- the same options produce bit-identical
// fabrics on every run, which is what the cross-shard determinism
// contract (tests/sim/shard_determinism_test.cpp) is pinned against.
//
// Generators: fat-tree (k-ary, k even: k pods of k/2 edge + k/2
// aggregation switches over (k/2)^2 cores, k^3/4 hosts), leaf-spine
// (configurable radix and oversubscription), and the degenerate star
// (N hosts into one bottleneck port -- the paper's Fig. 1 plant, used
// for single-shard parity benchmarking against the unsharded engine).
//
// The partitioner edge-cuts by pod (fat-tree) / leaf (leaf-spine):
// every switch of a pod lands on one shard together with the sources
// whose ingress edge lives there, and cores/spines are dealt
// round-robin, so only inter-pod hops and reverse BCN cross shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace bcn::sim::shard {

// Switch levels double for leaf-spine: Edge = leaf, Core = spine.
enum class SwitchLevel : std::uint8_t { Edge = 0, Aggregation = 1, Core = 2 };

struct SwitchNode {
  SwitchLevel level = SwitchLevel::Edge;
  // Fat-tree pod / leaf index this switch belongs to; -1 for cores and
  // spines (they belong to no pod and are partitioned round-robin).
  std::int32_t pod = -1;
};

// One directional output port: the queueing server of the egress link.
struct PortNode {
  std::uint32_t switch_id = 0;
  double capacity = 10e9;     // egress service rate [bits/s]
  double buffer_bits = 5e6;
};

struct FlowSpec {
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
};

struct Topology {
  std::string name;
  std::vector<SwitchNode> switches;
  std::vector<PortNode> ports;
  std::size_t num_hosts = 0;
  double host_rate = 10e9;          // host NIC line rate [bits/s]
  SimTime link_delay = 500;         // uniform per-hop propagation [ns]
  std::vector<FlowSpec> flows;
  // Flattened per-flow routes: flow f's output ports are
  // route_hops[route_offset[f] .. route_offset[f + 1]).
  std::vector<std::uint32_t> route_hops;
  std::vector<std::uint32_t> route_offset;  // size flows.size() + 1

  std::size_t route_length(std::size_t flow) const {
    return route_offset[flow + 1] - route_offset[flow];
  }
  const std::uint32_t* route(std::size_t flow) const {
    return route_hops.data() + route_offset[flow];
  }
  std::size_t max_route_length() const;
  // The edge switch host h hangs off (for flow placement / debugging).
  std::uint32_t edge_of_host(std::uint32_t host) const;
  // Hosts per edge/leaf switch (route resolution shares this shape).
  std::size_t hosts_per_edge() const { return hosts_per_edge_; }

 private:
  friend Topology make_fat_tree(const struct FatTreeOptions&);
  friend Topology make_leaf_spine(const struct LeafSpineOptions&);
  friend Topology make_star(const struct StarOptions&);
  std::size_t hosts_per_edge_ = 1;
};

struct FatTreeOptions {
  int k = 4;                     // even, >= 2
  double link_rate = 10e9;       // all fabric links (rearrangeably nonblocking)
  double host_rate = 10e9;
  // > 1 starves the edge uplinks: uplink rate = link_rate / oversubscription.
  double oversubscription = 1.0;
  double buffer_bits = 5e6;
  SimTime link_delay = 500;
};

struct LeafSpineOptions {
  int spines = 4;
  int leaves = 8;
  int hosts_per_leaf = 8;
  double host_rate = 10e9;
  // Uplink rate solves  spines * uplink = hosts_per_leaf * host_rate /
  // oversubscription  (the usual leaf oversubscription definition).
  double oversubscription = 1.0;
  double buffer_bits = 5e6;
  SimTime link_delay = 500;
};

// N hosts into a single bottleneck output port (paper Fig. 1).
struct StarOptions {
  int hosts = 5;
  double capacity = 10e9;
  double host_rate = 10e9;
  double buffer_bits = 5e6;
  SimTime link_delay = 500;
};

Topology make_fat_tree(const FatTreeOptions& options);
Topology make_leaf_spine(const LeafSpineOptions& options);
Topology make_star(const StarOptions& options);

// Parses a compact topology spec for tools/benches:
//   "fat-tree:K"                       e.g. fat-tree:8
//   "leaf-spine:SPINESxLEAVESxHOSTS"   e.g. leaf-spine:4x16x8
//   "star:N"                           e.g. star:50
// Returns false and fills *error on a malformed spec.
bool parse_topology_spec(const std::string& spec, Topology* out,
                         std::string* error);

// --- flow-set generators -------------------------------------------------
// All seeded and deterministic; flows append to topo.flows and their
// routes are resolved immediately.

// `rounds` seeded host permutations (fixed points rotated away), one flow
// per host per round: flows = rounds * num_hosts.
void add_permutation_flows(Topology& topo, int rounds, std::uint64_t seed);

// `count` flows between uniformly drawn distinct hosts.
void add_random_flows(Topology& topo, std::size_t count, std::uint64_t seed);

// `fan_in` flows from distinct random sources into one destination host.
void add_incast_flows(Topology& topo, std::uint32_t dst_host,
                      std::size_t fan_in, std::uint64_t seed);

// --- partitioner ---------------------------------------------------------

struct Partition {
  int shards = 1;
  std::vector<std::uint32_t> shard_of_switch;
  std::vector<std::uint32_t> shard_of_port;  // inherited from the switch
  std::vector<std::uint32_t> shard_of_flow;  // co-located with ingress edge
  // Links whose endpoints land on different shards (reporting only; the
  // conservative window is pinned to link_delay regardless -- see
  // engine.h for why).
  std::size_t cut_edges = 0;
};

// Edge-cut by pod/leaf: pod p -> shard p % shards, cores/spines
// round-robin by switch id, flows follow their ingress edge switch.
// `shards` is clamped to >= 1; counts above the pod count simply leave
// some shards sparse (determinism does not depend on balance).
Partition partition_topology(const Topology& topo, int shards);

}  // namespace bcn::sim::shard
