#include "sim/core_switch.h"

#include <algorithm>
#include <cmath>

namespace bcn::sim {

CoreSwitch::CoreSwitch(Simulator& sim, CoreSwitchConfig config,
                       SimStats& stats)
    : sim_(sim),
      config_(config),
      stats_(stats),
      mech_a_(&default_bcn_mechanism()),
      sampling_rng_(config.sampling_seed) {
  sample_every_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / config_.pm)));
}

void CoreSwitch::on_frame(const Frame& frame) {
  maybe_sample(frame);

  if (queue_bits_ + frame.size_bits > config_.buffer_bits) {
    ++stats_.counters.frames_dropped;
    maybe_pause();
    return;
  }
  queue_.push_back(frame);
  queue_bits_ += frame.size_bits;
  ++stats_.counters.frames_enqueued;
  if (monitor_) {
    monitor_->check_queue(to_seconds(sim_.now()), config_.cpid, queue_bits_);
  }
  maybe_pause();
  if (!serving_) start_service();
}

void CoreSwitch::maybe_sample(const Frame& frame) {
  const bool split = mech_b_ && frame.source >= first_b_;
  PacketMechanism& mech = split ? *mech_b_ : *mech_a_;
  // Arrival hooks are link-level rate/flow measurements (RCP's arrival
  // accumulator, FERA's flow estimator): every mechanism observing this
  // port sees every frame, including the other group's cross traffic.
  if (hook_a_) mech_a_->on_arrival(frame, to_seconds(sim_.now()));
  if (hook_b_) mech_b_->on_arrival(frame, to_seconds(sim_.now()));

  if (config_.random_sampling) {
    if (!sampling_rng_.bernoulli(config_.pm)) return;
  } else {
    if (++arrivals_since_sample_ < sample_every_) return;
    arrivals_since_sample_ = 0;
  }
  ++stats_.counters.frames_sampled;

  // Eq. (1): sigma = (q0 - q) - w * delta_q over the sampling interval.
  const double delta_q = queue_bits_ - queue_at_last_sample_;
  queue_at_last_sample_ = queue_bits_;
  const double sigma = (config_.q0 - queue_bits_) - config_.w * delta_q;
  stats_.record_sigma(sigma);

  if (!has_bcn_sender()) return;
  const double now_s = to_seconds(sim_.now());
  const FeedbackDecision decision =
      mech.on_sample({sigma, queue_bits_, now_s, &frame, &config_});
  switch (decision.kind) {
    case FeedbackDecision::Kind::None:
      break;
    case FeedbackDecision::Kind::Negative:
      ++stats_.counters.bcn_negative;
      stats_.events().record({now_s, obs::EventKind::BcnNegativeSent,
                              config_.cpid, frame.source, sigma, 0.0});
      emit_bcn({.cpid = config_.cpid, .target = frame.source,
                .sigma = sigma, .sent_at = sim_.now()});
      break;
    case FeedbackDecision::Kind::Positive:
      ++stats_.counters.bcn_positive;
      stats_.events().record({now_s, obs::EventKind::BcnPositiveSent,
                              config_.cpid, frame.source, sigma, 0.0});
      emit_bcn({.cpid = config_.cpid, .target = frame.source,
                .sigma = sigma, .sent_at = sim_.now()});
      break;
    case FeedbackDecision::Kind::RateAdvert:
      // Rate advertisements reuse the BCN positive/negative tallies by
      // sigma sign so the send/apply causal accounting stays closed.
      if (sigma < 0.0) {
        ++stats_.counters.bcn_negative;
      } else {
        ++stats_.counters.bcn_positive;
      }
      stats_.events().record({now_s, obs::EventKind::BcnRateAdvertSent,
                              config_.cpid, frame.source, sigma,
                              decision.advertised_rate});
      emit_bcn({.cpid = config_.cpid, .target = frame.source,
                .sigma = sigma,
                .advertised_rate = decision.advertised_rate,
                .sent_at = sim_.now()});
      break;
  }
}

void CoreSwitch::emit_bcn(const BcnMessage& message) {
  SimTime extra_delay = 0;
  if (faults_) {
    if (faults_->drop_bcn(sim_.now(), message.target)) return;
    extra_delay = faults_->bcn_extra_delay(sim_.now(), message.target);
    if (faults_->duplicate_bcn(sim_.now(), message.target)) {
      // The duplicate travels on time; only the original may be delayed.
      if (bcn_link_) {
        bcn_link_.send(message);
      } else {
        send_bcn_(message);
      }
    }
  }
  if (bcn_link_) {
    bcn_link_.send(message, extra_delay);
  } else {
    // Callback wiring delivers synchronously; extra delay needs a link.
    send_bcn_(message);
  }
}

void CoreSwitch::maybe_pause() {
  if (!config_.enable_pause || !(pause_link_ || send_pause_)) return;
  if (queue_bits_ < config_.qsc) return;
  if (sim_.now() < pause_cooldown_until_) return;
  pause_cooldown_until_ = sim_.now() + config_.pause_duration;
  ++stats_.counters.pause_frames;
  // The off transition is deterministic (802.3x quanta; the cooldown
  // prevents overlapping extensions), so record both edges now.
  const double duration_s = to_seconds(config_.pause_duration);
  stats_.events().record({to_seconds(sim_.now()), obs::EventKind::PauseOn,
                          config_.cpid, 0, 0.0, duration_s});
  stats_.events().record({to_seconds(pause_cooldown_until_),
                          obs::EventKind::PauseOff, config_.cpid, 0, 0.0,
                          duration_s});
  // A lost PAUSE frame leaves the PauseOn edge with no PauseApplied: the
  // switch asserted back-pressure but no source heard it.
  if (faults_ && faults_->drop_pause(sim_.now())) return;
  if (pause_link_) {
    pause_link_.send(PauseFrame{config_.pause_duration, sim_.now()});
  } else {
    send_pause_({config_.pause_duration, sim_.now()});
  }
}

void CoreSwitch::on_event(const SimEvent&) { finish_service(); }

void CoreSwitch::start_service() {
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  serving_ = true;
  depart_timer_ =
      sim_.arm(depart_timer_, sim_.now() + service_time(queue_.front().size_bits),
               this, EventKind::FrameDeparture, 0);
}

void CoreSwitch::finish_service() {
  const Frame frame = queue_.front();
  queue_.pop_front();
  queue_bits_ -= frame.size_bits;
  queue_bits_ = std::max(queue_bits_, 0.0);
  if (monitor_) {
    monitor_->check_queue(to_seconds(sim_.now()), config_.cpid, queue_bits_);
  }
  ++stats_.counters.frames_delivered;
  stats_.counters.bits_delivered += frame.size_bits;
  stats_.add_delivered(frame.source, frame.size_bits);
  if (sink_link_) {
    sink_link_.send(frame);
  } else if (sink_) {
    sink_(frame);
  }
  start_service();
}

}  // namespace bcn::sim
