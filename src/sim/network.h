// Wiring of the paper's Fig. 1 reference topology -- one of several the
// repo simulates (two-hop chains live in multihop.cpp, generated
// fat-tree / leaf-spine fabrics in sim/shard):
// N homogeneous sources -> (edge, where the rate regulators live) ->
// core switch -> sink, with symmetric propagation delays and backward BCN
// / PAUSE delivery.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bcn_params.h"
#include "core/mechanism.h"
#include "obs/monitor.h"
#include "sim/core_switch.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/mechanism.h"
#include "sim/source.h"
#include "sim/stats.h"

namespace bcn::sim {

struct NetworkConfig {
  core::BcnParams params = core::BcnParams::standard_draft();
  double frame_bits = 12000.0;
  // One-way propagation delay on each hop (the paper assumes ~0.5 us for a
  // 100 m run); BCN messages travel backwards over the same delay.
  SimTime propagation_delay = 500;  // ns
  // Congestion-control mechanism by registry name (core/mechanism.h):
  // "bcn" (fluid-matched, default), "bcn-draft", "qcn", "rcp", "fera".
  std::string mechanism = "bcn";
  // Heterogeneous competition: when non-empty, the last `sources_b`
  // sources (default: half of them) run mechanism_b against `mechanism`
  // on the shared bottleneck.
  std::string mechanism_b;
  std::size_t sources_b = 0;
  // Per-mechanism knobs (the plant itself comes from `params`).
  core::RcpParams rcp;
  core::QcnParams qcn;
  core::FeraParams fera;
  double min_rate = 1e6;
  double max_rate = 0.0;  // 0 -> capacity (source line rate = C)
  // 0 -> every source starts at params.init_rate; the fluid analysis start
  // corresponds to initial_rate = C / N with an empty queue.
  double initial_rate = 0.0;
  bool enable_pause = true;
  SimTime record_interval = 10 * kMicrosecond;
  // Random (Bernoulli-pm) frame sampling at the congestion point instead
  // of the deterministic 1/pm count the fluid model assumes.
  bool random_sampling = false;
  std::uint64_t sampling_seed = 0x5eed;

  // Traffic pattern knobs (flow churn): sources start staggered by
  // `stagger` and, with TrafficPattern::OnOff, alternate bursts and
  // silences so the number of active flows varies over time.
  TrafficPattern pattern = TrafficPattern::Saturating;
  SimTime on_time = 5 * kMillisecond;
  SimTime off_time = 5 * kMillisecond;
  SimTime stagger = 0;

  // Per-flow rate / per-port queue timelines (SimStats::timelines()),
  // sampled every record_interval alongside the aggregate trace.  On by
  // default; large sweeps that only need the aggregate trace can turn it
  // off to save the N-per-sample memory.
  bool record_timelines = true;
  // Causal BCN / PAUSE event trace (SimStats::events()).  On by default;
  // recording sits on the per-sample fast path, so maximum-throughput runs
  // (the sim-throughput benchmark) turn it off.
  bool record_events = true;

  // Degraded-network description (sim/faults.h).  The default all-zero
  // plan leaves the simulation bit-identical to a build without fault
  // wiring.  Reverse-path faults (BCN drop/delay/dup, PAUSE loss) apply
  // at the core switch; data_drop and flap windows apply on the
  // source -> switch forward link.
  FaultPlan faults;

  // Runtime invariant monitors + flight recorder (obs/monitor.h).  The
  // default spec arms nothing and leaves the run identical to a build
  // without monitor wiring; an armed spec switches the event trace into
  // ring (flight-recorder) mode and checks invariants per frame and per
  // sample tick.
  obs::MonitorConfig monitors;
};

class Network : public EventTarget {
 public:
  explicit Network(NetworkConfig config);

  // Runs the simulation for `duration` of simulated time (cumulative).
  void run(SimTime duration);

  // Typed-event dispatch: forward frame deliveries, backward BCN / PAUSE
  // deliveries, and the periodic sample tick.
  void on_event(const SimEvent& event) override;

  const SimStats& stats() const { return stats_; }
  const FaultCounters& fault_counters() const { return fault_counters_; }
  const obs::RunMonitor& monitor() const { return monitor_; }
  obs::RunMonitor& monitor() { return monitor_; }
  const CoreSwitch& core_switch() const { return *switch_; }
  const std::vector<std::unique_ptr<Source>>& sources() const {
    return sources_;
  }
  Simulator& simulator() { return sim_; }

  double aggregate_rate() const;
  double queue_bits() const { return switch_->queue_bits(); }

 private:
  // Channel tags carried in this network's typed events.
  static constexpr std::uint32_t kTagFrameToSwitch = 0;
  static constexpr std::uint32_t kTagBcnToSource = 1;
  static constexpr std::uint32_t kTagPauseToSources = 2;
  static constexpr std::uint32_t kTagSampleTick = 3;
  static constexpr std::uint32_t kTagFlapEdge = 4;

  void record_sample();
  void deliver_bcn(const BcnMessage& msg);
  void deliver_pause(const PauseFrame& pause);

  NetworkConfig config_;
  Simulator sim_;
  SimStats stats_;
  // Owned mechanism instances (declared before switch_/sources_, which
  // hold raw pointers into them, so they outlive their users).
  std::unique_ptr<PacketMechanism> mech_a_;
  std::unique_ptr<PacketMechanism> mech_b_;
  // Fault tally plus the two injection points: reverse-path faults at the
  // core switch, forward-link faults (data_drop, flaps) at frame delivery.
  FaultCounters fault_counters_;
  FaultInjector switch_faults_;
  FaultInjector link_faults_;
  // Invariant monitor; unarmed unless config_.monitors arms a spec.
  obs::RunMonitor monitor_;
  std::unique_ptr<CoreSwitch> switch_;
  std::vector<std::unique_ptr<Source>> sources_;
  SimTime run_until_ = 0;
  // Reused periodic sample timer.
  EventId sample_timer_ = kInvalidEvent;
  // Cached timeline handles (stable references into stats_.timelines())
  // so per-sample recording does not re-resolve series names.
  obs::Timeline* queue_timeline_ = nullptr;
  std::vector<obs::Timeline*> flow_rate_timelines_;
};

}  // namespace bcn::sim
