// Wire units exchanged in the simulated DCE: data frames, BCN messages
// (paper Fig. 2) and 802.3x PAUSE frames.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace bcn::sim {

using SourceId = std::uint32_t;
using CongestionPointId = std::uint32_t;  // the CPID field

struct Frame {
  SourceId source = 0;
  std::uint32_t dst = 0;       // destination id (multi-port forwarding)
  double size_bits = 12000.0;  // 1500-byte Ethernet payload by default
  std::uint64_t seq = 0;
  // Rate-regulator tag: set when the source is currently associated with a
  // congestion point; the CPID it carries (paper Section II.B).
  bool has_rrt = false;
  CongestionPointId rrt_cpid = 0;
  // Index into the flow's precomputed route (sharded fabrics); the port
  // receiving the frame uses it to find the next hop.  Single-topology
  // scenarios leave it 0.
  std::uint32_t hop = 0;
  SimTime sent_at = 0;
};

// The FB field carries sigma; positive sigma means "speed up".  FERA-mode
// congestion points additionally advertise an explicit allowed rate
// (advertised_rate >= 0), which explicit-rate regulators adopt directly.
struct BcnMessage {
  CongestionPointId cpid = 0;
  SourceId target = 0;
  double sigma = 0.0;            // feedback measure, eq. (1)
  double advertised_rate = -1.0; // explicit allowed rate [bits/s], < 0 = none
  SimTime sent_at = 0;
};

struct PauseFrame {
  SimTime duration = 0;  // pause quanta converted to time
  SimTime sent_at = 0;
};

}  // namespace bcn::sim
