#include "sim/parking_lot.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/core_switch.h"
#include "sim/event_queue.h"
#include "sim/source.h"

namespace bcn::sim {
namespace {

// Inter-hop wiring of the two-congestion-point series as a typed-event
// hub: frame hops and BCN deliveries are POD events dispatched back here.
class Scenario : public EventTarget {
 public:
  static constexpr std::uint32_t kTagFrameToCp1 = 0;
  static constexpr std::uint32_t kTagFrameToCp2 = 1;
  static constexpr std::uint32_t kTagBcnToSource = 2;
  static constexpr std::uint32_t kTagMonitor = 3;
  static constexpr std::uint32_t kTagFlapEdge = 4;
  // CP1's forwarded traffic gets its own channel so link faults hit only
  // the CP1 -> CP2 hop, not group B's direct access link.
  static constexpr std::uint32_t kTagFrameCp1ToCp2 = 5;

  explicit Scenario(const ParkingLotConfig& config) : config_(config) {
    auto switch_config = [&](CongestionPointId cpid, double capacity) {
      CoreSwitchConfig c;
      c.cpid = cpid;
      c.capacity = capacity;
      c.buffer_bits = config.buffer;
      c.q0 = config.q0;
      c.qsc = config.qsc;
      c.w = config.w;
      c.pm = config.pm;
      c.enable_pause = false;          // isolate the BCN dynamics
      c.positive_requires_rrt = true;  // the draft's CPID-matching rule
      return c;
    };
    cp1_ = std::make_unique<CoreSwitch>(sim_, switch_config(1, config.capacity1),
                                        stats1_);
    cp2_ = std::make_unique<CoreSwitch>(sim_, switch_config(2, config.capacity2),
                                        stats2_);

    if (!config.record_events) {
      stats1_.events().set_enabled(false);
      stats2_.events().set_enabled(false);
    }

    if (config.faults.armed()) {
      // Each congestion point draws from its own per-CPID lanes and
      // traces into its own SimStats; the CP1 -> CP2 link is entity 0.
      cp1_faults_ =
          FaultInjector(config.faults, 1, &fault_counters_, &stats1_.events());
      cp2_faults_ =
          FaultInjector(config.faults, 2, &fault_counters_, &stats2_.events());
      link_faults_ =
          FaultInjector(config.faults, 0, &fault_counters_, &stats1_.events());
      cp1_->set_fault_injector(&cp1_faults_);
      cp2_->set_fault_injector(&cp2_faults_);
      for (const LinkFlapWindow& w : config.faults.flaps) {
        sim_.schedule_event(w.down_at, this, EventKind::Tick, kTagFlapEdge);
        sim_.schedule_event(w.up_at, this, EventKind::Tick, kTagFlapEdge);
      }
    }

    // CP1 feeds CP2 after the hop delay (own channel: see kTagFrameCp1ToCp2).
    cp1_->set_sink(
        EventLink(sim_, this, kTagFrameCp1ToCp2, config.propagation_delay));

    const int total = config.group_a + config.group_b;
    sources_.reserve(total);
    for (int i = 0; i < total; ++i) {
      SourceConfig sc;
      sc.id = static_cast<SourceId>(i);
      sc.frame_bits = config.frame_bits;
      sc.initial_rate = config.initial_rate;
      sc.regulator.gi = config.gi;
      sc.regulator.gd = config.gd;
      sc.regulator.ru = config.ru;
      sc.regulator.min_rate = 1e6;
      sc.regulator.max_rate = std::max(config.capacity1, config.capacity2);
      // Default mechanism: BCN with fluid-matched feedback application.
      sources_.push_back(std::make_unique<Source>(sim_, sc));
    }

    // Both congestion points unicast BCN to the sampled frame's source.
    const EventLink bcn_to_source(sim_, this, kTagBcnToSource,
                                  config.propagation_delay);
    cp1_->set_bcn_sender(bcn_to_source);
    cp2_->set_bcn_sender(bcn_to_source);

    // Group A enters at CP1, group B directly at CP2.
    for (int i = 0; i < total; ++i) {
      const std::uint32_t tag =
          i < config.group_a ? kTagFrameToCp1 : kTagFrameToCp2;
      sources_[i]->start(
          EventLink(sim_, this, tag, config.propagation_delay));
    }

    monitor_timer_ = sim_.schedule_event(0, this, EventKind::Tick, kTagMonitor);
  }

  void on_event(const SimEvent& event) override {
    switch (event.tag) {
      case kTagFrameToCp1:
        cp1_->on_frame(event.payload.frame);
        break;
      case kTagFrameToCp2:
        cp2_->on_frame(event.payload.frame);
        break;
      case kTagFrameCp1ToCp2:
        if (link_faults_.armed()) {
          const Frame& f = event.payload.frame;
          if (link_faults_.cut_by_flap(sim_.now(), f.source) ||
              link_faults_.drop_data(sim_.now(), f.source)) {
            break;
          }
        }
        cp2_->on_frame(event.payload.frame);
        break;
      case kTagBcnToSource:
        if (event.payload.bcn.target < sources_.size()) {
          sources_[event.payload.bcn.target]->on_bcn(event.payload.bcn);
        }
        break;
      case kTagMonitor:
        peak1_ = std::max(peak1_, cp1_->queue_bits());
        peak2_ = std::max(peak2_, cp2_->queue_bits());
        sim_.reschedule(monitor_timer_, sim_.now() + 20 * kMicrosecond);
        break;
      case kTagFlapEdge: {
        const bool down = link_faults_.link_down(sim_.now());
        if (down) ++fault_counters_.link_flaps;
        stats1_.events().record(
            {to_seconds(sim_.now()),
             down ? obs::EventKind::LinkDown : obs::EventKind::LinkUp, 0, 0,
             0.0, 0.0});
        break;
      }
    }
  }

  ParkingLotResult run() {
    sim_.run_until(config_.duration);

    ParkingLotResult r;
    const int total = config_.group_a + config_.group_b;
    for (int i = 0; i < total; ++i) {
      if (i < config_.group_a) {
        r.group_a_rate += sources_[i]->rate();
        if (sources_[i]->regulator().is_associated()) {
          (sources_[i]->regulator().cpid() == 1 ? r.group_a_on_cp1
                                                : r.group_a_on_cp2)++;
        }
      } else {
        r.group_b_rate += sources_[i]->rate();
      }
    }
    if (config_.group_a > 0) r.group_a_rate /= config_.group_a;
    if (config_.group_b > 0) r.group_b_rate /= config_.group_b;
    r.cp1_peak_queue = peak1_;
    r.cp2_peak_queue = peak2_;
    r.cp1_negatives = stats1_.counters.bcn_negative;
    r.cp2_negatives = stats2_.counters.bcn_negative;
    r.cp1_positives = stats1_.counters.bcn_positive;
    r.cp2_positives = stats2_.counters.bcn_positive;
    r.drops =
        stats1_.counters.frames_dropped + stats2_.counters.frames_dropped;
    r.events_executed = sim_.executed();
    r.fault_counters = fault_counters_;
    return r;
  }

 private:
  ParkingLotConfig config_;
  Simulator sim_;
  SimStats stats1_;
  SimStats stats2_;
  std::unique_ptr<CoreSwitch> cp1_;
  std::unique_ptr<CoreSwitch> cp2_;
  std::vector<std::unique_ptr<Source>> sources_;
  FaultCounters fault_counters_;
  FaultInjector cp1_faults_;
  FaultInjector cp2_faults_;
  FaultInjector link_faults_;
  EventId monitor_timer_ = kInvalidEvent;
  double peak1_ = 0.0;
  double peak2_ = 0.0;
};

}  // namespace

ParkingLotResult run_parking_lot(const ParkingLotConfig& config) {
  Scenario scenario(config);
  return scenario.run();
}

}  // namespace bcn::sim
