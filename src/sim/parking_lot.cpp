#include "sim/parking_lot.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/core_switch.h"
#include "sim/event_queue.h"
#include "sim/source.h"

namespace bcn::sim {

ParkingLotResult run_parking_lot(const ParkingLotConfig& config) {
  Simulator sim;
  SimStats stats1;
  SimStats stats2;

  auto switch_config = [&](CongestionPointId cpid, double capacity) {
    CoreSwitchConfig c;
    c.cpid = cpid;
    c.capacity = capacity;
    c.buffer_bits = config.buffer;
    c.q0 = config.q0;
    c.qsc = config.qsc;
    c.w = config.w;
    c.pm = config.pm;
    c.enable_pause = false;       // isolate the BCN dynamics
    c.positive_requires_rrt = true;  // the draft's CPID-matching rule
    return c;
  };
  CoreSwitch cp1(sim, switch_config(1, config.capacity1), stats1);
  CoreSwitch cp2(sim, switch_config(2, config.capacity2), stats2);

  // CP1 feeds CP2 after the hop delay.
  cp1.set_sink([&](const Frame& frame) {
    sim.schedule_after(config.propagation_delay,
                       [&, frame] { cp2.on_frame(frame); });
  });

  const int total = config.group_a + config.group_b;
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(total);
  for (int i = 0; i < total; ++i) {
    SourceConfig sc;
    sc.id = static_cast<SourceId>(i);
    sc.frame_bits = config.frame_bits;
    sc.initial_rate = config.initial_rate;
    sc.regulator.gi = config.gi;
    sc.regulator.gd = config.gd;
    sc.regulator.ru = config.ru;
    sc.regulator.min_rate = 1e6;
    sc.regulator.max_rate =
        std::max(config.capacity1, config.capacity2);
    sc.regulator.mode = FeedbackMode::FluidMatched;
    sources.push_back(std::make_unique<Source>(sim, sc));
  }

  // Both congestion points unicast BCN to the sampled frame's source.
  const auto bcn_to_source = [&](const BcnMessage& msg) {
    sim.schedule_after(config.propagation_delay, [&, msg] {
      if (msg.target < sources.size()) sources[msg.target]->on_bcn(msg);
    });
  };
  cp1.set_bcn_sender(bcn_to_source);
  cp2.set_bcn_sender(bcn_to_source);

  // Group A enters at CP1, group B directly at CP2.
  for (int i = 0; i < total; ++i) {
    const bool in_group_a = i < config.group_a;
    sources[i]->start([&, in_group_a](const Frame& frame) {
      sim.schedule_after(config.propagation_delay, [&, frame] {
        (in_group_a ? cp1 : cp2).on_frame(frame);
      });
    });
  }

  // Peak-queue monitor.
  double peak1 = 0.0;
  double peak2 = 0.0;
  std::function<void()> monitor = [&] {
    peak1 = std::max(peak1, cp1.queue_bits());
    peak2 = std::max(peak2, cp2.queue_bits());
    sim.schedule_after(20 * kMicrosecond, monitor);
  };
  sim.schedule_at(0, monitor);

  sim.run_until(config.duration);

  ParkingLotResult r;
  for (int i = 0; i < total; ++i) {
    if (i < config.group_a) {
      r.group_a_rate += sources[i]->rate();
      if (sources[i]->regulator().is_associated()) {
        (sources[i]->regulator().cpid() == 1 ? r.group_a_on_cp1
                                             : r.group_a_on_cp2)++;
      }
    } else {
      r.group_b_rate += sources[i]->rate();
    }
  }
  if (config.group_a > 0) r.group_a_rate /= config.group_a;
  if (config.group_b > 0) r.group_b_rate /= config.group_b;
  r.cp1_peak_queue = peak1;
  r.cp2_peak_queue = peak2;
  r.cp1_negatives = stats1.counters.bcn_negative;
  r.cp2_negatives = stats2.counters.bcn_negative;
  r.cp1_positives = stats1.counters.bcn_positive;
  r.cp2_positives = stats2.counters.bcn_positive;
  r.drops = stats1.counters.frames_dropped + stats2.counters.frames_dropped;
  return r;
}

}  // namespace bcn::sim
