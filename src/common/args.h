// Minimal command-line flag parsing for the tools: --name value and
// --name=value forms, with typed lookups and unknown-flag detection.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bcn {

class ArgParser {
 public:
  // Parses argv; flags must start with "--".  A flag followed by another
  // flag (or nothing) is treated as boolean true.
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;
  double get_double(const std::string& name, double fallback) const;
  int get_int(const std::string& name, int fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  // Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  // Flags that were parsed, for unknown-flag checks.
  std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

// Worker-count knob shared by every tool/bench: the --threads flag, with
// the BCN_THREADS environment variable as fallback when the flag is
// absent.  Returns `fallback` when neither is set.  The convention is
// 0 = all hardware threads, 1 = serial (see exec::resolve_threads).
int thread_count(const ArgParser& args, int fallback = 1);

// Flags that were passed but are not in `known` — callers reject these
// instead of silently ignoring a typo like --thread or --grd.
std::vector<std::string> unknown_flags(const ArgParser& args,
                                       const std::vector<std::string>& known);

// Convenience guard: prints "unknown flag --x (try --help)" to stderr for
// each unknown flag and returns false if any were found.
bool reject_unknown_flags(const ArgParser& args,
                          const std::vector<std::string>& known);

}  // namespace bcn
