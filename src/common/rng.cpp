#include "common/rng.h"

#include <cmath>

namespace bcn {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection-free enough for test workloads; use simple
  // modulo with rejection to avoid bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace bcn
