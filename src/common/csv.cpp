#include "common/csv.h"

#include <cassert>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bcn {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

void append_cell(std::string& out, const std::string& cell) {
  if (!needs_quoting(cell)) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(std::initializer_list<double> values) {
  add_row(std::vector<double>(values));
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format(v));
  add_row(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) out += ',';
    append_cell(out, header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      append_cell(out, row[i]);
    }
    out += '\n';
  }
  return out;
}

bool CsvWriter::write_file(const std::filesystem::path& path) const {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

std::string CsvWriter::format(double v) {
  char buf[64];
  const auto [ptr, err] = std::to_chars(buf, buf + sizeof buf, v);
  if (err != std::errc()) return "nan";
  return std::string(buf, ptr);
}

int CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

double CsvTable::value(std::size_t row, int col, double fallback) const {
  if (col < 0 || row >= rows.size()) return fallback;
  const auto& cells = rows[row];
  if (static_cast<std::size_t>(col) >= cells.size()) return fallback;
  const std::string& cell = cells[static_cast<std::size_t>(col)];
  char* end = nullptr;
  const double parsed = std::strtod(cell.c_str(), &end);
  return (end && *end == '\0' && end != cell.c_str()) ? parsed : fallback;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  bool row_started = false;

  auto end_cell = [&] {
    cells.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&] {
    if (!row_started && cells.empty()) return;
    end_cell();
    if (table.header.empty()) {
      table.header = std::move(cells);
    } else {
      table.rows.push_back(std::move(cells));
    }
    cells.clear();
    row_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"': in_quotes = true; row_started = true; break;
      case ',': end_cell(); row_started = true; break;
      case '\r': break;
      case '\n': end_row(); break;
      default: cell += c; row_started = true;
    }
  }
  if (row_started || !cell.empty() || !cells.empty()) end_row();
  return table;
}

std::optional<CsvTable> read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return parse_csv(all);
}

}  // namespace bcn
