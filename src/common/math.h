// Small numeric helpers shared across the library.
#pragma once

#include <array>
#include <cmath>
#include <complex>
#include <functional>
#include <optional>

namespace bcn {

// A point in the (x, y) phase plane; also used as a generic 2-vector.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 v) { return {s * v.x, s * v.y}; }
  friend Vec2 operator*(Vec2 v, double s) { return s * v; }
  friend bool operator==(const Vec2&, const Vec2&) = default;

  double norm() const { return std::hypot(x, y); }
};

// Sign of v as -1, 0 or +1.
inline int sign(double v) { return (v > 0.0) - (v < 0.0); }

// True when |a - b| <= atol + rtol * max(|a|, |b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

// Relative error |measured - expected| / max(|expected|, floor).
double relative_error(double measured, double expected, double floor = 1e-30);

// Roots of x^2 + m x + n = 0, always returned as a complex pair with
// real roots ordered so that real(first) <= real(second).
std::array<std::complex<double>, 2> solve_monic_quadratic(double m, double n);

// Bisection root refinement of a continuous scalar function f on [lo, hi]
// where f(lo) and f(hi) have opposite (non-zero) signs.  Returns the root
// located to within xtol.  Returns nullopt when the bracket is invalid.
// When `iterations` is non-null it receives the number of interval
// halvings performed (0 when an endpoint already is the root).
std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double xtol = 1e-12,
                             int max_iter = 200, int* iterations = nullptr);

// Linear interpolation: value at fraction u in [0,1] between a and b.
inline double lerp(double a, double b, double u) { return a + (b - a) * u; }

// Wrap an angle into [0, 2*pi).
double wrap_angle(double theta);

}  // namespace bcn
