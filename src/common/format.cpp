#include "common/format.h"

#include <cstdio>
#include <vector>

namespace bcn {

std::string vstrf(const char* fmt, std::va_list args) {
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  if (needed <= 0) return {};
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string strf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::string out = vstrf(fmt, args);
  va_end(args);
  return out;
}

}  // namespace bcn
