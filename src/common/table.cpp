#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace bcn {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row_numeric(const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format(v, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::format(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string TablePrinter::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title.empty()) out += title + "\n";
  out += render_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace bcn
