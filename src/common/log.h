// Tiny leveled logger.  Default level is Warn so library code is silent in
// tests and benches unless something is wrong; tools can raise verbosity.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/format.h"

namespace bcn {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

// Process-wide log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

// Small process-local id for the calling thread (main thread observes 0
// when it logs first).  Stable for the thread's lifetime; used to make
// interleaved worker logs attributable and to key trace spans.
unsigned thread_ordinal();

// The formatted line log_line writes:
//   [LEVEL +12.345678 t03] message
// where +s.ssssss is monotonic seconds since process start and tNN the
// caller's thread_ordinal.  Exposed so tests can pin the format.
std::string format_log_line(LogLevel level, std::string_view message);

// Writes one line to stderr when `level` >= the threshold.
void log_line(LogLevel level, std::string_view message);

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

// First-N gate for repetitive diagnostics: a recurring condition (clamped
// deadline, injected drop, monitor violation) logs its first few
// occurrences to identify itself and then goes quiet, while a counter
// keeps the full tally for metrics.  allow() counts every call and
// returns true for the first `first_n` of them.
class LogRateLimit {
 public:
  explicit LogRateLimit(std::uint64_t first_n = 5) : limit_(first_n) {}

  bool allow() { return ++count_ <= limit_; }
  // Occurrences observed so far (allowed or suppressed).
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t limit_;
  std::uint64_t count_ = 0;
};

#define BCN_LOG_DEBUG(...) ::bcn::log(::bcn::LogLevel::Debug, __VA_ARGS__)
#define BCN_LOG_INFO(...) ::bcn::log(::bcn::LogLevel::Info, __VA_ARGS__)
#define BCN_LOG_WARN(...) ::bcn::log(::bcn::LogLevel::Warn, __VA_ARGS__)
#define BCN_LOG_ERROR(...) ::bcn::log(::bcn::LogLevel::Error, __VA_ARGS__)

}  // namespace bcn
