// Tiny leveled logger.  Default level is Warn so library code is silent in
// tests and benches unless something is wrong; tools can raise verbosity.
#pragma once

#include <string_view>

#include "common/format.h"

namespace bcn {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

// Process-wide log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

// Writes one line to stderr when `level` >= the threshold.
void log_line(LogLevel level, std::string_view message);

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

#define BCN_LOG_DEBUG(...) ::bcn::log(::bcn::LogLevel::Debug, __VA_ARGS__)
#define BCN_LOG_INFO(...) ::bcn::log(::bcn::LogLevel::Info, __VA_ARGS__)
#define BCN_LOG_WARN(...) ::bcn::log(::bcn::LogLevel::Warn, __VA_ARGS__)
#define BCN_LOG_ERROR(...) ::bcn::log(::bcn::LogLevel::Error, __VA_ARGS__)

}  // namespace bcn
