// printf-style std::string formatting (GCC 12's libstdc++ lacks <format>).
#pragma once

#include <cstdarg>
#include <string>

namespace bcn {

// Returns the printf-formatted string.  Attribute-checked like printf.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string strf(const char* fmt, ...);

std::string vstrf(const char* fmt, std::va_list args);

}  // namespace bcn
