// Minimal CSV writing for benchmark/analysis output.
#pragma once

#include <filesystem>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace bcn {

// Accumulates rows of mixed string/double cells and writes RFC-4180-ish CSV.
// Cells containing commas, quotes or newlines are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  // Appends one row.  The number of cells must equal the header width.
  void add_row(std::vector<std::string> cells);
  void add_row(std::initializer_list<double> values);
  void add_row(const std::vector<double>& values);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }

  // Serializes header + rows.
  std::string to_string() const;

  // Writes to `path`, creating parent directories as needed.
  // Returns false (and leaves no partial file behind) on I/O failure.
  bool write_file(const std::filesystem::path& path) const;

  // Formats a double with enough digits to round-trip.
  static std::string format(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Parsed CSV table (the inverse of CsvWriter, for consuming bench
// artifacts).  Quoting rules match CsvWriter's output.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  // Column index by name; -1 when absent.
  int column(const std::string& name) const;
  // Numeric cell access; returns fallback for missing/unparsable cells.
  double value(std::size_t row, int col, double fallback = 0.0) const;
};

// Parses CSV text (first line = header).  Handles quoted cells with
// embedded commas, quotes and newlines.
CsvTable parse_csv(const std::string& text);

// Reads and parses a CSV file; nullopt on I/O failure.
std::optional<CsvTable> read_csv_file(const std::filesystem::path& path);

}  // namespace bcn
