#include "common/args.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace bcn {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--flag value" unless the next token is another flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return (end && *end == '\0') ? parsed : fallback;
}

int ArgParser::get_int(const std::string& name, int fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  return (end && *end == '\0') ? static_cast<int>(parsed) : fallback;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> ArgParser::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

int thread_count(const ArgParser& args, int fallback) {
  if (const auto v = args.get("threads")) {
    char* end = nullptr;
    const long parsed = std::strtol(v->c_str(), &end, 10);
    if (end && *end == '\0' && parsed >= 0) return static_cast<int>(parsed);
    return fallback;
  }
  if (const char* env = std::getenv("BCN_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end && *end == '\0' && parsed >= 0) return static_cast<int>(parsed);
  }
  return fallback;
}

std::vector<std::string> unknown_flags(const ArgParser& args,
                                       const std::vector<std::string>& known) {
  std::vector<std::string> unknown;
  for (const auto& name : args.flag_names()) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

bool reject_unknown_flags(const ArgParser& args,
                          const std::vector<std::string>& known) {
  const auto unknown = unknown_flags(args, known);
  for (const auto& name : unknown) {
    std::fprintf(stderr, "unknown flag --%s (try --help)\n", name.c_str());
  }
  return unknown.empty();
}

}  // namespace bcn
