// Fixed-width console table printer used by the benchmark harnesses to print
// paper-comparable summary rows.
#pragma once

#include <string>
#include <vector>

namespace bcn {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant digits.
  void add_row_numeric(const std::vector<double>& values, int precision = 6);

  // Renders with column-aligned cells, a header underline, and `title` on
  // its own line when non-empty.
  std::string to_string(const std::string& title = "") const;

  static std::string format(double v, int precision = 6);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bcn
