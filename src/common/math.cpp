#include "common/math.h"

#include <algorithm>
#include <numbers>

namespace bcn {

bool approx_equal(double a, double b, double rtol, double atol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= atol + rtol * scale;
}

double relative_error(double measured, double expected, double floor) {
  const double denom = std::max(std::abs(expected), floor);
  return std::abs(measured - expected) / denom;
}

std::array<std::complex<double>, 2> solve_monic_quadratic(double m, double n) {
  const double disc = m * m - 4.0 * n;
  if (disc >= 0.0) {
    const double s = std::sqrt(disc);
    // Use the numerically stable form: compute the larger-magnitude root
    // first, derive the other from the product of roots (= n).
    double r1;
    if (m >= 0.0) {
      r1 = (-m - s) / 2.0;
    } else {
      r1 = (-m + s) / 2.0;
    }
    double r2 = (r1 != 0.0) ? n / r1 : (-m - r1);
    if (r1 > r2) std::swap(r1, r2);
    return {std::complex<double>(r1, 0.0), std::complex<double>(r2, 0.0)};
  }
  const double re = -m / 2.0;
  const double im = std::sqrt(-disc) / 2.0;
  return {std::complex<double>(re, -im), std::complex<double>(re, im)};
}

std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double xtol, int max_iter,
                             int* iterations) {
  if (iterations) *iterations = 0;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (sign(flo) == sign(fhi) || lo > hi) return std::nullopt;
  for (int i = 0; i < max_iter && (hi - lo) > xtol; ++i) {
    const double mid = lo + (hi - lo) / 2.0;
    const double fmid = f(mid);
    if (iterations) *iterations = i + 1;
    if (fmid == 0.0) return mid;
    if (sign(fmid) == sign(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
  }
  return lo + (hi - lo) / 2.0;
}

double wrap_angle(double theta) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  double w = std::fmod(theta, two_pi);
  if (w < 0.0) w += two_pi;
  return w;
}

}  // namespace bcn
