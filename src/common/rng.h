// Deterministic pseudo-random number generation.
//
// The packet simulator and the property-test sweeps must be reproducible
// bit-for-bit across runs, so everything random in this repository flows
// through this xoshiro256** generator seeded explicitly (never from the
// clock).
#pragma once

#include <cstdint>

namespace bcn {

class Rng {
 public:
  // Seeds the four 64-bit lanes from `seed` via splitmix64, so that any
  // seed (including 0) produces a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace bcn
