#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace bcn {

void JsonWriter::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, quote(value));
}

void JsonWriter::add(const std::string& key, const char* value) {
  add(key, std::string(value));
}

void JsonWriter::add(const std::string& key, double value) {
  fields_.emplace_back(key, format(value));
}

void JsonWriter::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonWriter::add(const std::string& key, int value) {
  add(key, static_cast<std::int64_t>(value));
}

void JsonWriter::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void JsonWriter::add(const std::string& key,
                     const std::vector<double>& values) {
  std::string raw = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) raw += ", ";
    raw += format(values[i]);
  }
  raw += "]";
  fields_.emplace_back(key, std::move(raw));
}

std::string JsonWriter::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  " + quote(fields_[i].first) + ": " + fields_[i].second;
    if (i + 1 < fields_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

bool JsonWriter::write_file(const std::filesystem::path& path) const {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

std::string JsonWriter::quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string JsonWriter::format(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace bcn
