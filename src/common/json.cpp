#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

namespace bcn {

void JsonWriter::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, quote(value));
}

void JsonWriter::add(const std::string& key, const char* value) {
  add(key, std::string(value));
}

void JsonWriter::add(const std::string& key, double value) {
  fields_.emplace_back(key, format(value));
}

void JsonWriter::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonWriter::add(const std::string& key, int value) {
  add(key, static_cast<std::int64_t>(value));
}

void JsonWriter::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void JsonWriter::add(const std::string& key,
                     const std::vector<double>& values) {
  std::string raw = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) raw += ", ";
    raw += format(values[i]);
  }
  raw += "]";
  fields_.emplace_back(key, std::move(raw));
}

std::string JsonWriter::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  " + quote(fields_[i].first) + ": " + fields_[i].second;
    if (i + 1 < fields_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

std::string JsonWriter::to_line() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += quote(fields_[i].first) + ":" + fields_[i].second;
  }
  out += "}";
  return out;
}

bool JsonWriter::write_file(const std::filesystem::path& path) const {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

std::string JsonWriter::quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string JsonWriter::format(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

// Minimal recursive-descent scanner over the flat-object grammar.
struct FlatScanner {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return std::nullopt;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
          pos += 4;
          // Artifacts only escape control characters; anything wider is
          // preserved as the raw low byte (good enough for diff output).
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<double> parse_number() {
    skip_ws();
    char* end = nullptr;
    const double v = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) return std::nullopt;
    pos = static_cast<std::size_t>(end - text.c_str());
    return v;
  }
};

}  // namespace

std::optional<FlatJson> FlatJson::parse(const std::string& text) {
  FlatScanner s{text};
  FlatJson out;
  if (!s.consume('{')) return std::nullopt;
  if (s.consume('}')) return out;  // empty object
  for (;;) {
    const auto key = s.parse_string();
    if (!key || !s.consume(':')) return std::nullopt;
    const char c = s.peek();
    if (c == '"') {
      const auto v = s.parse_string();
      if (!v) return std::nullopt;
      out.strings_[*key] = *v;
    } else if (c == 't' && s.literal("true")) {
      out.numbers_[*key] = 1.0;
    } else if (c == 'f' && s.literal("false")) {
      out.numbers_[*key] = 0.0;
    } else if (c == 'n' && s.literal("null")) {
      out.numbers_[*key] = std::nan("");
    } else if (c == '[') {
      s.consume('[');
      std::vector<double> values;
      if (!s.consume(']')) {
        for (;;) {
          const auto v = s.parse_number();
          if (!v) return std::nullopt;
          values.push_back(*v);
          if (s.consume(']')) break;
          if (!s.consume(',')) return std::nullopt;
        }
      }
      out.arrays_[*key] = std::move(values);
    } else {
      const auto v = s.parse_number();
      if (!v) return std::nullopt;
      out.numbers_[*key] = *v;
    }
    if (s.consume('}')) break;
    if (!s.consume(',')) return std::nullopt;
  }
  s.skip_ws();
  if (s.pos != text.size()) return std::nullopt;  // trailing garbage
  return out;
}

std::optional<FlatJson> FlatJson::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return parse(text);
}

std::optional<double> FlatJson::number(const std::string& key) const {
  const auto it = numbers_.find(key);
  if (it == numbers_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> FlatJson::string_value(
    const std::string& key) const {
  const auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bcn
