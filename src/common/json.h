// Minimal flat JSON-object writer for machine-readable bench/runner
// artifacts (RUN_*.json, BENCH_*.json).  Keys keep insertion order;
// doubles are emitted with round-trip precision; strings are escaped per
// RFC 8259.  Deliberately not a general JSON library — nothing in the
// tree needs nesting beyond one object of scalars and flat arrays.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bcn {

class JsonWriter {
 public:
  void add(const std::string& key, const std::string& value);
  void add(const std::string& key, const char* value);
  void add(const std::string& key, double value);
  void add(const std::string& key, std::int64_t value);
  void add(const std::string& key, int value);
  void add(const std::string& key, bool value);
  // Array of numbers, e.g. per-run wall clocks.
  void add(const std::string& key, const std::vector<double>& values);

  std::size_t size() const { return fields_.size(); }

  // One pretty-printed object, one "key": value per line.
  std::string to_string() const;

  // The same object on a single line (no trailing newline) — the wire
  // form of the newline-delimited service protocol (docs/SERVICE.md).
  std::string to_line() const;

  // Writes to `path`, creating parent directories as needed; false on I/O
  // failure.
  bool write_file(const std::filesystem::path& path) const;

  // JSON string literal (with quotes) for `s`.
  static std::string quote(const std::string& s);
  // Round-trip double formatting; inf/nan become null (JSON has neither).
  static std::string format(double v);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> raw
};

// Reader for the flat artifact objects JsonWriter produces (RUN_*.json,
// BENCH_*.json): one object of scalar values, plus flat number arrays.
// Numbers, booleans (0/1) and null (NaN) land in `numbers`; strings in
// `strings`; arrays in `arrays`.  Not a general JSON parser — nested
// objects are rejected, which is fine for everything this tree writes
// except the Chrome trace (which has its own validator in tests).
class FlatJson {
 public:
  // Parses `text`; nullopt on malformed input.
  static std::optional<FlatJson> parse(const std::string& text);
  // Reads and parses a file; nullopt on I/O or parse failure.
  static std::optional<FlatJson> load(const std::filesystem::path& path);

  const std::map<std::string, double>& numbers() const { return numbers_; }
  const std::map<std::string, std::string>& strings() const {
    return strings_;
  }
  const std::map<std::string, std::vector<double>>& arrays() const {
    return arrays_;
  }

  std::optional<double> number(const std::string& key) const;
  std::optional<std::string> string_value(const std::string& key) const;

 private:
  std::map<std::string, double> numbers_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::vector<double>> arrays_;
};

}  // namespace bcn
