// Minimal flat JSON-object writer for machine-readable bench/runner
// artifacts (RUN_*.json, BENCH_*.json).  Keys keep insertion order;
// doubles are emitted with round-trip precision; strings are escaped per
// RFC 8259.  Deliberately not a general JSON library — nothing in the
// tree needs nesting beyond one object of scalars and flat arrays.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace bcn {

class JsonWriter {
 public:
  void add(const std::string& key, const std::string& value);
  void add(const std::string& key, const char* value);
  void add(const std::string& key, double value);
  void add(const std::string& key, std::int64_t value);
  void add(const std::string& key, int value);
  void add(const std::string& key, bool value);
  // Array of numbers, e.g. per-run wall clocks.
  void add(const std::string& key, const std::vector<double>& values);

  std::size_t size() const { return fields_.size(); }

  // One pretty-printed object, one "key": value per line.
  std::string to_string() const;

  // Writes to `path`, creating parent directories as needed; false on I/O
  // failure.
  bool write_file(const std::filesystem::path& path) const;

  // JSON string literal (with quotes) for `s`.
  static std::string quote(const std::string& s);
  // Round-trip double formatting; inf/nan become null (JSON has neither).
  static std::string format(double v);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> raw
};

}  // namespace bcn
