#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace bcn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

// Monotonic seconds since the first log-clock use (process start for any
// practical purpose: the epoch is pinned on the first log call).
double uptime_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

unsigned thread_ordinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string format_log_line(LogLevel level, std::string_view message) {
  return strf("[%s +%.6f t%02u] %.*s", level_name(level), uptime_seconds(),
              thread_ordinal(), static_cast<int>(message.size()),
              message.data());
}

void log_line(LogLevel level, std::string_view message) {
  const std::string line = format_log_line(level, message);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  log_line(level, vstrf(fmt, args));
  va_end(args);
}

}  // namespace bcn
