#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace bcn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  log_line(level, vstrf(fmt, args));
  va_end(args);
}

}  // namespace bcn
