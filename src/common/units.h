// Unit conversion constants for Data Center Ethernet quantities.
//
// The library works internally in SI base units: bits, seconds and
// bits/second, all stored as double.  These constants make call sites read
// like the paper ("C = 10 Gbps", "q0 = 2.5 Mbit") without introducing a
// heavyweight unit-type system.
#pragma once

namespace bcn::units {

// --- data volume (bits) -----------------------------------------------------
inline constexpr double kBit = 1.0;
inline constexpr double kKbit = 1e3;
inline constexpr double kMbit = 1e6;
inline constexpr double kGbit = 1e9;
inline constexpr double kByte = 8.0;
inline constexpr double kKByte = 8e3;

// --- rate (bits/second) -----------------------------------------------------
inline constexpr double kBps = 1.0;   // bit per second
inline constexpr double kKbps = 1e3;
inline constexpr double kMbps = 1e6;
inline constexpr double kGbps = 1e9;

// --- time (seconds) ---------------------------------------------------------
inline constexpr double kSecond = 1.0;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

}  // namespace bcn::units
