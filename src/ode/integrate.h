// Integration drivers for smooth (single-mode) planar ODEs.
#pragma once

#include "ode/dopri5.h"
#include "ode/system.h"
#include "ode/trajectory.h"

namespace bcn::ode {

enum class Stepper { Euler, Heun, Rk4 };

struct FixedStepOptions {
  Stepper stepper = Stepper::Rk4;
  double step = 1e-3;
};

// Integrates z' = f(t, z) from (t0, z0) to t1 with a constant step,
// recording every step.  The last step is shortened to land exactly on t1.
Trajectory integrate_fixed(const Rhs& f, double t0, Vec2 z0, double t1,
                           const FixedStepOptions& options);

struct AdaptiveOptions {
  Tolerances tol;
  double max_step = 0.0;   // 0 -> no cap
  double min_step = 1e-14; // below this the driver gives up (stiff/degenerate)
  std::size_t max_steps = 2'000'000;
  // When > 0, the recorded trajectory is resampled from the dense output at
  // this uniform interval instead of at the (irregular) internal steps.
  double record_interval = 0.0;
};

struct AdaptiveResult {
  Trajectory trajectory;
  bool completed = false;    // reached t1
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  // Smallest accepted step size (0.0 until a step is accepted).
  double min_accepted_step = 0.0;
};

// Adaptive DOPRI5 integration of a smooth system over [t0, t1].
AdaptiveResult integrate_adaptive(const Rhs& f, double t0, Vec2 z0, double t1,
                                  const AdaptiveOptions& options = {});

}  // namespace bcn::ode
