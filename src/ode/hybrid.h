// Hybrid (switched-mode) planar ODE integration with event-localized mode
// transitions.
//
// The BCN fluid model is a variable-structure system: different vector
// fields on either side of the switching line sigma(z) = 0, possibly with
// additional buffer-wall modes.  Integrating it with a smooth-system driver
// smears the switching instant across a step; this driver localizes each
// surface crossing with the dense output + bisection and restarts the
// integration exactly at the crossing, which is what makes limit-cycle
// amplitudes and transient extrema trustworthy.
#pragma once

#include <functional>
#include <vector>

#include "ode/dopri5.h"
#include "ode/system.h"
#include "ode/trajectory.h"

namespace bcn::ode {

// A multi-mode system.  `mode_of` must be consistent with the guards: the
// active mode may change only where some guard crosses zero.
struct HybridSystem {
  std::vector<Rhs> modes;
  std::function<int(double, Vec2)> mode_of;
  std::vector<Guard> guards;
};

struct ModeSwitch {
  double t = 0.0;
  Vec2 z;
  int guard_index = -1;
  int from_mode = -1;
  int to_mode = -1;
  // Bisection iterations spent localizing this crossing (0 for the
  // safety-net step-end switches, which have no guard to bisect).
  int bisection_iterations = 0;
};

struct HybridOptions {
  Tolerances tol;
  double max_step = 0.0;   // 0 -> derived from the time span
  double min_step = 1e-14;
  std::size_t max_steps = 4'000'000;
  std::size_t max_switches = 100'000;
  // Optional early-stop predicate checked after each accepted step.
  std::function<bool(double, Vec2)> stop_when;
  // Record at this uniform interval from dense output; 0 -> every step.
  double record_interval = 0.0;
};

struct HybridResult {
  Trajectory trajectory;
  std::vector<ModeSwitch> switches;
  bool completed = false;      // reached t1 (or stop_when fired)
  bool stopped_early = false;  // stop_when fired
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  // Smallest time advance of any accepted step, including event-truncated
  // ones (0.0 until a step is accepted).
  double min_accepted_step = 0.0;
  // Total guard-localization bisection iterations across every surface
  // crossing (including crossings that did not change the mode).
  std::size_t event_bisection_iterations = 0;
  // The integration aborted because the state (or the initial condition)
  // went non-finite — a NaN/Inf out of the RHS.  `nonfinite_t` is the
  // time of the last finite state; the trajectory contains only finite
  // samples.  A NaN error estimate would otherwise *pass* the DOPRI5
  // acceptance test (NaN comparisons are false), so without this guard
  // non-finite states silently propagate into verdicts.
  bool nonfinite = false;
  double nonfinite_t = 0.0;
};

// Integrates the hybrid system over [t0, t1] from z0.
HybridResult integrate_hybrid(const HybridSystem& system, double t0, Vec2 z0,
                              double t1, const HybridOptions& options = {});

}  // namespace bcn::ode
