#include "ode/batch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bcn::ode {

namespace {

// One classic RK4 step of the lane law under a frozen region field.
// Kept as a free inline over plain doubles so both the vectorized pass
// and the scalar crossing path share the exact same arithmetic (and
// therefore produce bitwise-identical states for identical inputs).
inline void rk4_step(double x, double y, double h, double sx, double sy,
                     double drive, double g0, double g1, double& xo,
                     double& yo) {
  const auto fy = [&](double xx, double yy) {
    return drive + (g0 + g1 * yy) * -(sx * xx + sy * yy);
  };
  const double k1x = y;
  const double k1y = fy(x, y);
  const double k2x = y + 0.5 * h * k1y;
  const double k2y = fy(x + 0.5 * h * k1x, y + 0.5 * h * k1y);
  const double k3x = y + 0.5 * h * k2y;
  const double k3y = fy(x + 0.5 * h * k2x, y + 0.5 * h * k2y);
  const double k4x = y + h * k3y;
  const double k4y = fy(x + h * k3x, y + h * k3y);
  xo = x + h / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
  yo = y + h / 6.0 * (k1y + 2.0 * k2y + 2.0 * k3y + k4y);
}

// Root of the cubic Hermite interpolant of sigma over [0, 1] given end
// values and end derivatives (d/du).  Bisection on the polynomial: the
// caller guarantees a sign change between the endpoints.
inline double hermite_root(double p0, double m0, double p1, double m1,
                           int iters) {
  const auto eval = [&](double u) {
    const double u2 = u * u;
    const double u3 = u2 * u;
    return (2.0 * u3 - 3.0 * u2 + 1.0) * p0 + (u3 - 2.0 * u2 + u) * m0 +
           (-2.0 * u3 + 3.0 * u2) * p1 + (u3 - u2) * m1;
  };
  double lo = 0.0, hi = 1.0;
  double flo = p0;
  for (int it = 0; it < iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fm = eval(mid);
    if ((flo <= 0.0) == (fm <= 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

BatchIntegrator::BatchIntegrator(BatchOptions options) : options_(options) {}

void BatchIntegrator::reset(const BatchLane* lanes, std::size_t n) {
  const auto grow = [n](auto& v) { v.resize(std::max(v.size(), n)); };
  grow(x_), grow(y_), grow(t_), grow(dt0_), grow(dt1_), grow(tend_);
  grow(sx_), grow(sy_), grow(dr0_), grow(dr1_);
  grow(ga0_), grow(ga1_), grow(gb0_), grow(gb1_);
  grow(ivx_), grow(ivy_), grow(stol_);
  grow(reg_), grow(swi_), grow(ids_);
  grow(xn_), grow(yn_), grow(s0_), grow(s1_), grow(hcur_);
  grow(maxx_), grow(minx_), grow(pmaxx_), grow(pminx_), grow(fct_);
  grow(crossed_), grow(steps_), grow(ncross_);
  results_.assign(n, LaneResult{});
  active_ = n;

  for (std::size_t i = 0; i < n; ++i) {
    const BatchLane& lane = lanes[i];
    x_[i] = lane.x0;
    y_[i] = lane.y0;
    t_[i] = 0.0;
    dt0_[i] = lane.dt[0];
    dt1_[i] = lane.dt[1];
    tend_[i] = lane.t_end;
    sx_[i] = lane.law.sx;
    sy_[i] = lane.law.sy;
    dr0_[i] = lane.law.drive[0];
    dr1_[i] = lane.law.drive[1];
    ga0_[i] = lane.law.g0[0];
    ga1_[i] = lane.law.g0[1];
    gb0_[i] = lane.law.g1[0];
    gb1_[i] = lane.law.g1[1];
    ivx_[i] = lane.inv_x_scale;
    ivy_[i] = lane.inv_y_scale;
    stol_[i] = lane.stop_tol;
    const double sig0 = -(lane.law.sx * lane.x0 + lane.law.sy * lane.y0);
    reg_[i] = sig0 > 0.0 ? 0 : 1;
    swi_[i] = lane.law.switched ? 1 : 0;
    ids_[i] = static_cast<std::uint32_t>(i);
    maxx_[i] = -std::numeric_limits<double>::infinity();
    minx_[i] = std::numeric_limits<double>::infinity();
    pmaxx_[i] = 0.0;  // post-switch extrema fold from 0, like FluidRun
    pminx_[i] = 0.0;
    fct_[i] = 0.0;
    crossed_[i] = 0;
    steps_[i] = 0;
    ncross_[i] = 0;
  }
}

void BatchIntegrator::fold_sample(std::size_t i, double xs) {
  maxx_[i] = std::max(maxx_[i], xs);
  minx_[i] = std::min(minx_[i], xs);
  if (crossed_[i]) {
    pmaxx_[i] = std::max(pmaxx_[i], xs);
    pminx_[i] = std::min(pminx_[i], xs);
  }
}

void BatchIntegrator::commit_plain(std::size_t i, double h) {
  x_[i] = xn_[i];
  y_[i] = yn_[i];
  t_[i] += h;
  // Re-derive the region from the end state's sigma sign (the scalar
  // driver's mode_of safety net); for a no-crossing step this is a no-op
  // unless sigma landed exactly on 0.
  if (swi_[i]) reg_[i] = s1_[i] > 0.0 ? 0 : 1;
  fold_sample(i, x_[i]);
  ++steps_[i];
}

void BatchIntegrator::commit_at_crossing(std::size_t i, double h) {
  // Sigma changed sign across the candidate step: localize the first
  // crossing on the cubic Hermite interpolant of sigma, land the lane
  // exactly there, flip the region, and truncate the macro step.  The
  // next step continues under the new region's field *and step size* —
  // the scalar hybrid driver's restart-at-event policy.  This keeps the
  // candidate end state from ever being committed with a stale field,
  // which matters once the two regions carry very different dts.
  const double sx = sx_[i], sy = sy_[i];
  const int r = reg_[i];
  const double drive = r == 0 ? dr0_[i] : dr1_[i];
  const double g0 = r == 0 ? ga0_[i] : ga1_[i];
  const double g1 = r == 0 ? gb0_[i] : gb1_[i];
  const auto rhs_y = [&](double xx, double yy) {
    return drive + (g0 + g1 * yy) * -(sx * xx + sy * yy);
  };

  const double xa = x_[i], ya = y_[i];
  const double xb = xn_[i], yb = yn_[i];
  // Hermite data for sigma over the step: sigma' = -(sx x' + sy y').
  const double da = -(sx * ya + sy * rhs_y(xa, ya)) * h;
  const double db = -(sx * yb + sy * rhs_y(xb, yb)) * h;
  double u = hermite_root(s0_[i], da, s1_[i], db, options_.max_bisections);
  // Guarantee forward progress even if the interpolant pins the root
  // onto the step's start.
  u = std::clamp(u, 1e-6, 1.0);
  const double hc = u * h;
  double xc, yc;
  rk4_step(xa, ya, hc, sx, sy, drive, g0, g1, xc, yc);

  x_[i] = xc;
  y_[i] = yc;
  t_[i] += hc;
  if (!crossed_[i]) {
    crossed_[i] = 1;
    // The crossing sample itself is post-switch (the scalar run gates
    // on t >= first switch time inclusively).
    fct_[i] = t_[i];
  }
  ++ncross_[i];
  // The landed sigma is an epsilon value of ambiguous sign; trust the
  // side the candidate step was heading to.
  reg_[i] = s1_[i] > 0.0 ? 0 : 1;
  fold_sample(i, xc);
  ++steps_[i];
}

void BatchIntegrator::retire_nonfinite(std::size_t i) {
  LaneResult& out = results_[ids_[i]];
  out.nonfinite = true;
  out.nonfinite_t = t_[i];  // last committed (finite) time
  out.completed = false;
  if (steps_[i] > 0) {
    out.max_x = maxx_[i];
    out.min_x = minx_[i];
  }
  out.crossed = crossed_[i] != 0;
  out.first_crossing_t = fct_[i];
  out.post_switch_max_x = pmaxx_[i];
  out.post_switch_min_x = pminx_[i];
  out.steps = steps_[i];
  out.crossings = ncross_[i];
  if (nonfinite_warnings_.allow()) {
    BCN_LOG_ERROR(
        "ode: batch lane %u went non-finite after t=%.9g "
        "(x=%g, y=%g); lane retired, verdict will not be stable",
        ids_[i], t_[i], xn_[i], yn_[i]);
  }
}

bool BatchIntegrator::retire_if_done(std::size_t i) {
  bool done = false;
  bool converged = false;
  if (stol_[i] > 0.0 &&
      std::abs(x_[i]) * ivx_[i] + std::abs(y_[i]) * ivy_[i] < stol_[i]) {
    done = true;
    converged = true;
  }
  // Completion tolerance mirrors vector_rk4's loop bound.
  if (t_[i] >= tend_[i] - 1e-12 * std::max(1.0, std::abs(tend_[i]))) {
    done = true;
  }
  if (!done) return false;

  LaneResult& out = results_[ids_[i]];
  out.max_x = maxx_[i];
  out.min_x = minx_[i];
  out.crossed = crossed_[i] != 0;
  out.first_crossing_t = fct_[i];
  out.post_switch_max_x = pmaxx_[i];
  out.post_switch_min_x = pminx_[i];
  out.completed = true;
  out.converged = converged;
  out.steps = steps_[i];
  out.crossings = ncross_[i];
  return true;
}

std::size_t BatchIntegrator::step_all() {
  const std::size_t m = active_;
  if (m == 0) return 0;

  // Pass 1 — vectorizable: a full RK4 macro step for every active lane
  // under its frozen region field, plus sigma at both step ends.
  for (std::size_t i = 0; i < m; ++i) {
    const double h =
        std::min(reg_[i] == 0 ? dt0_[i] : dt1_[i], tend_[i] - t_[i]);
    hcur_[i] = h;
    const int r = reg_[i];
    const double drive = r == 0 ? dr0_[i] : dr1_[i];
    const double g0 = r == 0 ? ga0_[i] : ga1_[i];
    const double g1 = r == 0 ? gb0_[i] : gb1_[i];
    const double sx = sx_[i], sy = sy_[i];
    double xo, yo;
    rk4_step(x_[i], y_[i], h, sx, sy, drive, g0, g1, xo, yo);
    xn_[i] = xo;
    yn_[i] = yo;
    s0_[i] = -(sx * x_[i] + sy * y_[i]);
    s1_[i] = -(sx * xo + sy * yo);
  }

  // Pass 2 — scalar: crossing localization, statistics, retirement with
  // swap-from-last compaction.  Results are keyed by original lane id,
  // so the outcome is independent of retirement order.
  std::size_t i = 0;
  std::size_t n = m;
  while (i < n) {
    bool retired;
    // Fail fast on a non-finite candidate state: committing it would
    // poison the lane clock (NaN t never reaches t_end) and the folded
    // extrema.  The lane retires with nonfinite set; the rest of the
    // batch is unaffected.
    if (!(std::isfinite(xn_[i]) && std::isfinite(yn_[i]))) {
      retire_nonfinite(i);
      retired = true;
    } else {
      if (swi_[i] && (s0_[i] <= 0.0) != (s1_[i] <= 0.0)) {
        commit_at_crossing(i, hcur_[i]);
      } else {
        commit_plain(i, hcur_[i]);
      }
      retired = retire_if_done(i);
    }
    if (retired) {
      --n;
      if (i != n) {
        x_[i] = x_[n], y_[i] = y_[n], t_[i] = t_[n];
        dt0_[i] = dt0_[n], dt1_[i] = dt1_[n], tend_[i] = tend_[n];
        sx_[i] = sx_[n], sy_[i] = sy_[n];
        dr0_[i] = dr0_[n], dr1_[i] = dr1_[n];
        ga0_[i] = ga0_[n], ga1_[i] = ga1_[n];
        gb0_[i] = gb0_[n], gb1_[i] = gb1_[n];
        ivx_[i] = ivx_[n], ivy_[i] = ivy_[n], stol_[i] = stol_[n];
        reg_[i] = reg_[n], swi_[i] = swi_[n], ids_[i] = ids_[n];
        // The swapped-in lane has not been committed this pass yet; its
        // pass-1 scratch must travel with it.
        xn_[i] = xn_[n], yn_[i] = yn_[n];
        s0_[i] = s0_[n], s1_[i] = s1_[n], hcur_[i] = hcur_[n];
        maxx_[i] = maxx_[n], minx_[i] = minx_[n];
        pmaxx_[i] = pmaxx_[n], pminx_[i] = pminx_[n], fct_[i] = fct_[n];
        crossed_[i] = crossed_[n];
        steps_[i] = steps_[n], ncross_[i] = ncross_[n];
      }
    } else {
      ++i;
    }
  }
  active_ = n;
  return n;
}

void BatchIntegrator::run_to_completion() {
  while (step_all() != 0) {
  }
}

}  // namespace bcn::ode
