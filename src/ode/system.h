// Planar (2-D) autonomous/non-autonomous ODE system abstractions.
//
// The whole phase-plane toolkit works on second-order systems written in
// first-order form over the plane, so the integrators are specialized to
// Vec2 states.  This keeps the API concrete (no templates at call sites)
// and matches the paper's setting exactly.
#pragma once

#include <functional>

#include "common/math.h"

namespace bcn::ode {

// Right-hand side f(t, z) -> dz/dt of a planar ODE.
using Rhs = std::function<Vec2(double t, Vec2 z)>;

// A scalar guard/event function g(t, z); events fire at sign changes of g
// along the solution.
using Guard = std::function<double(double t, Vec2 z)>;

}  // namespace bcn::ode
