// Single-step explicit integrators for planar ODEs.
//
// Fixed-step one-step methods (Euler / Heun / classic RK4).  These exist as
// baselines and cross-checks for the adaptive Dormand-Prince stepper in
// dopri5.h, and for the "naive fixed-step vs event-detected switching"
// ablation (see DESIGN.md section 5).
#pragma once

#include "ode/system.h"

namespace bcn::ode {

// Forward Euler: first order.
Vec2 euler_step(const Rhs& f, double t, Vec2 z, double h);

// Heun (explicit trapezoid): second order.
Vec2 heun_step(const Rhs& f, double t, Vec2 z, double h);

// Classic Runge-Kutta: fourth order.
Vec2 rk4_step(const Rhs& f, double t, Vec2 z, double h);

}  // namespace bcn::ode
