#include "ode/vector_rk4.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bcn::ode {

void vector_rk4_step(const VectorRhs& f, double t, double h,
                     std::vector<double>& state, VectorRk4Scratch& s) {
  const std::size_t n = state.size();
  s.resize(n);
  f(t, state, s.k1);
  for (std::size_t j = 0; j < n; ++j) s.tmp[j] = state[j] + 0.5 * h * s.k1[j];
  f(t + 0.5 * h, s.tmp, s.k2);
  for (std::size_t j = 0; j < n; ++j) s.tmp[j] = state[j] + 0.5 * h * s.k2[j];
  f(t + 0.5 * h, s.tmp, s.k3);
  for (std::size_t j = 0; j < n; ++j) s.tmp[j] = state[j] + h * s.k3[j];
  f(t + h, s.tmp, s.k4);
  for (std::size_t j = 0; j < n; ++j) {
    state[j] += h / 6.0 * (s.k1[j] + 2.0 * s.k2[j] + 2.0 * s.k3[j] + s.k4[j]);
  }
}

void vector_rk4_integrate(
    const VectorRhs& f, double t0, double t1, double h,
    std::vector<double>& state,
    const std::function<void(double, const std::vector<double>&)>& observe) {
  assert(h > 0.0);
  VectorRk4Scratch scratch;
  double t = t0;
  // The initial state is part of the trajectory: without it, recorded
  // timelines (e.g. the 3-state competition runs) start one step late.
  if (observe) observe(t0, state);
  while (t < t1 - 1e-15 * std::max(1.0, std::abs(t1))) {
    const double step = std::min(h, t1 - t);
    vector_rk4_step(f, t, step, state, scratch);
    t += step;
    if (observe) observe(t, state);
  }
}

}  // namespace bcn::ode
