// Event (switching-surface crossing) localization within one accepted
// DOPRI5 step, using its dense output.
#pragma once

#include <optional>

#include "ode/dopri5.h"
#include "ode/system.h"

namespace bcn::ode {

struct LocatedEvent {
  double t = 0.0;  // event time
  Vec2 z;          // state at the event (from dense output)
  // Interval halvings the localization needed (0 when the crossing sat
  // exactly on the step end); feeds the integrator step statistics.
  int bisection_iterations = 0;
};

// If g(t, z(t)) changes sign over the dense-output interval [t0, t1],
// returns the earliest crossing, located by bisection to time tolerance
// `ttol` (relative to the step length).  Crossings are detected from the
// endpoint signs, so a double crossing inside one step can be missed —
// callers must keep steps below half the fastest oscillation period (the
// hybrid driver enforces a max-step for this reason).
std::optional<LocatedEvent> locate_event(const Guard& g,
                                         const DenseOutput& dense,
                                         double ttol = 1e-12);

}  // namespace bcn::ode
