#include "ode/dopri5.h"

#include <algorithm>
#include <cmath>

namespace bcn::ode {
namespace {

// Dormand-Prince 5(4) Butcher tableau.
constexpr double c2 = 1.0 / 5.0, c3 = 3.0 / 10.0, c4 = 4.0 / 5.0,
                 c5 = 8.0 / 9.0;
constexpr double a21 = 1.0 / 5.0;
constexpr double a31 = 3.0 / 40.0, a32 = 9.0 / 40.0;
constexpr double a41 = 44.0 / 45.0, a42 = -56.0 / 15.0, a43 = 32.0 / 9.0;
constexpr double a51 = 19372.0 / 6561.0, a52 = -25360.0 / 2187.0,
                 a53 = 64448.0 / 6561.0, a54 = -212.0 / 729.0;
constexpr double a61 = 9017.0 / 3168.0, a62 = -355.0 / 33.0,
                 a63 = 46732.0 / 5247.0, a64 = 49.0 / 176.0,
                 a65 = -5103.0 / 18656.0;
constexpr double a71 = 35.0 / 384.0, a73 = 500.0 / 1113.0,
                 a74 = 125.0 / 192.0, a75 = -2187.0 / 6784.0,
                 a76 = 11.0 / 84.0;
// e = b5 - b4: error-estimate weights.
constexpr double e1 = 71.0 / 57600.0, e3 = -71.0 / 16695.0,
                 e4 = 71.0 / 1920.0, e5 = -17253.0 / 339200.0,
                 e6 = 22.0 / 525.0, e7 = -1.0 / 40.0;
// Dense-output weights (Hairer, Nørsett & Wanner, DOPRI5 rcont5).
constexpr double d1 = -12715105075.0 / 11282082432.0;
constexpr double d3 = 87487479700.0 / 32700410799.0;
constexpr double d4 = -10690763975.0 / 1880347072.0;
constexpr double d5 = 701980252875.0 / 199316789632.0;
constexpr double d6 = -1453857185.0 / 822651844.0;
constexpr double d7 = 69997945.0 / 29380423.0;

}  // namespace

Vec2 DenseOutput::eval(double t) const {
  double theta = h_ != 0.0 ? (t - t0_) / h_ : 0.0;
  theta = std::clamp(theta, 0.0, 1.0);
  const double theta1 = 1.0 - theta;
  // u(theta) = r0 + theta*(r1 + theta1*(r2 + theta*(r3 + theta1*r4)))
  return rcont_[0] +
         theta * (rcont_[1] +
                  theta1 * (rcont_[2] +
                            theta * (rcont_[3] + theta1 * rcont_[4])));
}

Dopri5::Dopri5(Rhs f, Tolerances tol) : f_(std::move(f)), tol_(tol) {}

double Dopri5::error_norm(Vec2 z, Vec2 z_new, Vec2 err) const {
  auto scaled = [&](double e, double a, double b) {
    const double sk =
        tol_.abs_tol + tol_.rel_tol * std::max(std::abs(a), std::abs(b));
    return e / sk;
  };
  const double ex = scaled(err.x, z.x, z_new.x);
  const double ey = scaled(err.y, z.y, z_new.y);
  return std::sqrt((ex * ex + ey * ey) / 2.0);
}

Dopri5Step Dopri5::trial_step(double t, Vec2 z, Vec2 k1, double h) const {
  const Vec2 k2 = f_(t + c2 * h, z + h * (a21 * k1));
  const Vec2 k3 = f_(t + c3 * h, z + h * (a31 * k1 + a32 * k2));
  const Vec2 k4 = f_(t + c4 * h, z + h * (a41 * k1 + a42 * k2 + a43 * k3));
  const Vec2 k5 =
      f_(t + c5 * h, z + h * (a51 * k1 + a52 * k2 + a53 * k3 + a54 * k4));
  const Vec2 k6 = f_(
      t + h, z + h * (a61 * k1 + a62 * k2 + a63 * k3 + a64 * k4 + a65 * k5));
  const Vec2 z_new =
      z + h * (a71 * k1 + a73 * k3 + a74 * k4 + a75 * k5 + a76 * k6);
  const Vec2 k7 = f_(t + h, z_new);

  const Vec2 err = h * (e1 * k1 + e3 * k3 + e4 * k4 + e5 * k5 + e6 * k6 +
                        e7 * k7);

  Dopri5Step out;
  out.z_new = z_new;
  out.k_last = k7;
  out.error = error_norm(z, z_new, err);

  const Vec2 dy = z_new - z;
  const Vec2 bspl = h * k1 - dy;
  out.rcont[0] = z;
  out.rcont[1] = dy;
  out.rcont[2] = bspl;
  out.rcont[3] = dy - h * k7 - bspl;
  out.rcont[4] =
      h * (d1 * k1 + d3 * k3 + d4 * k4 + d5 * k5 + d6 * k6 + d7 * k7);
  return out;
}

double Dopri5::next_step_size(double h, double error) const {
  constexpr double safety = 0.9;
  constexpr double min_factor = 0.2;
  constexpr double max_factor = 5.0;
  double factor;
  if (error <= 1e-30) {
    factor = max_factor;
  } else {
    factor = safety * std::pow(error, -0.2);
    factor = std::clamp(factor, min_factor, max_factor);
  }
  return h * factor;
}

double Dopri5::initial_step_size(double t0, Vec2 z0) const {
  const Vec2 f0 = f_(t0, z0);
  const double d0 = z0.norm();
  const double d1n = f0.norm();
  double h0 = (d0 < 1e-5 || d1n < 1e-5) ? 1e-6 : 0.01 * (d0 / d1n);
  // One Euler probe to estimate the second derivative scale.
  const Vec2 z1 = z0 + h0 * f0;
  const Vec2 f1 = f_(t0 + h0, z1);
  const double d2 = (f1 - f0).norm() / h0;
  const double scale = std::max(d1n, d2);
  double h1 = (scale <= 1e-15)
                  ? std::max(1e-6, h0 * 1e-3)
                  : std::pow(0.01 / scale, 1.0 / 5.0);
  return std::min(100.0 * h0, h1);
}

}  // namespace bcn::ode
