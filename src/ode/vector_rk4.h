// Fixed-step classic RK4 over arbitrary-dimension states.
//
// The planar stack (steppers.h / dopri5.h) covers the phase-plane work;
// this utility serves the N-dimensional models (e.g. the multi-flow fluid
// model's [q, r_1..r_N] state) without forcing them to hand-roll the
// tableau.  Derivatives are written into a caller-provided buffer so the
// inner loop allocates nothing.
#pragma once

#include <functional>
#include <vector>

namespace bcn::ode {

// dy/dt = f(t, y) with y an N-vector; f writes the derivative into `dy`
// (sized like `y`).
using VectorRhs =
    std::function<void(double t, const std::vector<double>& y,
                       std::vector<double>& dy)>;

// Scratch space for allocation-free stepping; reusable across steps.
struct VectorRk4Scratch {
  std::vector<double> k1, k2, k3, k4, tmp;
  void resize(std::size_t n) {
    k1.resize(n);
    k2.resize(n);
    k3.resize(n);
    k4.resize(n);
    tmp.resize(n);
  }
};

// Advances `state` in place by one RK4 step of size h.
void vector_rk4_step(const VectorRhs& f, double t, double h,
                     std::vector<double>& state, VectorRk4Scratch& scratch);

// Integrates from t0 to t1 with fixed step h (last step shortened to land
// on t1).  `observe`, when set, is called after every step with (t, state).
void vector_rk4_integrate(
    const VectorRhs& f, double t0, double t1, double h,
    std::vector<double>& state,
    const std::function<void(double, const std::vector<double>&)>& observe =
        {});

}  // namespace bcn::ode
