// Dormand-Prince 5(4) embedded Runge-Kutta pair with FSAL and the classic
// Hairer dense-output interpolant.
//
// The dense output is what makes precise switching-surface localization
// possible in the hybrid integrator: after an accepted macro-step we can
// evaluate the solution at any interior point to ~4th-order accuracy and
// bisect the guard function there, instead of shrinking integration steps.
#pragma once

#include <array>

#include "ode/system.h"

namespace bcn::ode {

// One accepted-or-rejected trial step of DOPRI5.
struct Dopri5Step {
  Vec2 z_new;           // 5th-order solution at t + h
  Vec2 k_last;          // f(t + h, z_new): FSAL stage, reusable as next k1
  double error = 0.0;   // scaled error-norm estimate (<= 1 means acceptable)
  // Dense-output coefficients for this step (valid only if the step is
  // accepted); see DenseOutput.
  std::array<Vec2, 5> rcont;
};

// Continuous extension of one accepted DOPRI5 step over [t0, t0 + h].
class DenseOutput {
 public:
  DenseOutput() = default;
  DenseOutput(double t0, double h, const std::array<Vec2, 5>& rcont)
      : t0_(t0), h_(h), rcont_(rcont) {}

  // Solution at time t in [t0, t0 + h] (clamped).
  Vec2 eval(double t) const;

  double t0() const { return t0_; }
  double t1() const { return t0_ + h_; }

 private:
  double t0_ = 0.0;
  double h_ = 0.0;
  std::array<Vec2, 5> rcont_{};
};

// Error-control tolerances for the adaptive driver.
struct Tolerances {
  double abs_tol = 1e-9;
  double rel_tol = 1e-9;
};

class Dopri5 {
 public:
  explicit Dopri5(Rhs f, Tolerances tol = {});

  // Performs one trial step of size h from (t, z).  `k1` must be f(t, z)
  // (pass compute_k1() for the first step, then the previous step's k_last
  // thanks to FSAL).
  Dopri5Step trial_step(double t, Vec2 z, Vec2 k1, double h) const;

  Vec2 compute_k1(double t, Vec2 z) const { return f_(t, z); }

  // Step-size controller: next step size after a step with `error` (the
  // scaled norm from Dopri5Step) and size h.  Standard PI-free controller
  // with safety factor and growth clamps.
  double next_step_size(double h, double error) const;

  // Initial step-size heuristic (Hairer's algorithm, simplified).
  double initial_step_size(double t0, Vec2 z0) const;

  const Tolerances& tolerances() const { return tol_; }

 private:
  double error_norm(Vec2 z, Vec2 z_new, Vec2 err) const;

  Rhs f_;
  Tolerances tol_;
};

}  // namespace bcn::ode
