#include "ode/trajectory.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bcn::ode {
namespace {

double component_of(Vec2 z, int component) {
  return component == 0 ? z.x : z.y;
}

}  // namespace

Vec2 Trajectory::interpolate(double t) const {
  assert(!samples_.empty());
  if (t <= samples_.front().t) return samples_.front().z;
  if (t >= samples_.back().t) return samples_.back().z;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, double value) { return s.t < value; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  const double span = hi.t - lo.t;
  if (span <= 0.0) return lo.z;
  const double u = (t - lo.t) / span;
  return {lerp(lo.z.x, hi.z.x, u), lerp(lo.z.y, hi.z.y, u)};
}

double Trajectory::min_component(int component) const {
  assert(!samples_.empty());
  double m = component_of(samples_.front().z, component);
  for (const Sample& s : samples_) {
    m = std::min(m, component_of(s.z, component));
  }
  return m;
}

double Trajectory::max_component(int component) const {
  assert(!samples_.empty());
  double m = component_of(samples_.front().z, component);
  for (const Sample& s : samples_) {
    m = std::max(m, component_of(s.z, component));
  }
  return m;
}

std::vector<Extremum> Trajectory::local_extrema(int component) const {
  std::vector<Extremum> out;
  for (std::size_t i = 1; i + 1 < samples_.size(); ++i) {
    const double prev = component_of(samples_[i - 1].z, component);
    const double cur = component_of(samples_[i].z, component);
    const double next = component_of(samples_[i + 1].z, component);
    if (cur > prev && cur >= next) {
      out.push_back({samples_[i].t, cur, true});
    } else if (cur < prev && cur <= next) {
      out.push_back({samples_[i].t, cur, false});
    }
  }
  return out;
}

std::vector<double> Trajectory::zero_crossings(
    const std::function<double(double, Vec2)>& g) const {
  std::vector<double> out;
  if (samples_.size() < 2) return out;
  double g_prev = g(samples_.front().t, samples_.front().z);
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double g_cur = g(samples_[i].t, samples_[i].z);
    if (g_prev == 0.0) {
      out.push_back(samples_[i - 1].t);
    } else if (sign(g_prev) != sign(g_cur) && g_cur != 0.0) {
      const double u = g_prev / (g_prev - g_cur);
      out.push_back(lerp(samples_[i - 1].t, samples_[i].t, u));
    }
    g_prev = g_cur;
  }
  return out;
}

double Trajectory::tail_distance(Vec2 target, double tail_fraction) const {
  if (samples_.empty()) return 0.0;
  const double t_start =
      samples_.back().t - tail_fraction * std::max(duration(), 0.0);
  double worst = 0.0;
  for (const Sample& s : samples_) {
    if (s.t < t_start) continue;
    worst = std::max(worst, (s.z - target).norm());
  }
  return worst;
}

Trajectory Trajectory::decimate(std::size_t stride) const {
  if (stride <= 1 || samples_.size() <= 2) return *this;
  Trajectory out;
  out.reserve(samples_.size() / stride + 2);
  for (std::size_t i = 0; i < samples_.size(); i += stride) {
    out.samples_.push_back(samples_[i]);
  }
  if (out.samples_.back().t != samples_.back().t) {
    out.samples_.push_back(samples_.back());
  }
  return out;
}

}  // namespace bcn::ode
