// Structure-of-arrays batched integration of many *independent* planar
// switched systems: the stability-map/sweep hot path.
//
// The scalar stack (dopri5.h / hybrid.h) integrates one trajectory at a
// time through std::function right-hand sides — ideal for a single
// high-accuracy run, wasteful for a map that integrates thousands of
// short, mutually independent trajectories.  This driver instead steps N
// lanes per fixed-size RK4 macro step over contiguous SoA arrays.  The
// inner loop is branch-light (the active region only selects
// coefficients), indirection-free and auto-vectorizable, and after the
// first reset at a given capacity the integrator allocates nothing.
//
// Lane dynamics are restricted to the affine switched family
//
//   sigma(z) = -(sx x + sy y),   region r = sigma > 0 ? 0 : 1,
//   dx/dt = y,
//   dy/dt = drive[r] + (g0[r] + g1[r] y) sigma,
//
// which covers the interior laws of every registered fluid mechanism
// (BCN eq. (8)/(9), QCN's constant drive + quantized decrease, RCP's
// single smooth rate law) at both the Linearized and Nonlinear model
// levels.  Buffer-wall (Clipped) modes are deliberately out of scope:
// callers needing walls take the scalar hybrid path.
//
// Switching-surface events are handled per lane, mirroring ode/hybrid's
// dense-output bisection: sigma along an accepted macro step is
// interpolated by a cubic Hermite (sigma and its time derivative are
// exact at both step ends), the crossing is bisected on that cubic, and
// the lane is re-stepped to land exactly on the crossing, where the
// region flips and the macro step truncates — the next step continues
// under the new region's field and step size (the scalar driver's
// restart-at-event policy).  Step sizes are per region: a lane whose
// decrease law is 30x slower than its increase law takes 30x larger
// steps there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.h"

namespace bcn::ode {

// One lane's switched interior law (see the family above).
struct LaneLaw {
  double sx = 1.0;  // sigma = -(sx x + sy y)
  double sy = 0.0;
  double drive[2] = {0.0, 0.0};  // constant drive per region
  double g0[2] = {0.0, 0.0};     // dy += (g0 + g1 y) sigma
  double g1[2] = {0.0, 0.0};
  // False for single-law mechanisms (RCP): both regions carry the same
  // coefficients and no crossing is ever localized or reported, matching
  // the scalar hybrid system's guard-free interior.
  bool switched = true;
};

// Everything needed to run one lane to completion.
struct BatchLane {
  LaneLaw law;
  double x0 = 0.0;  // initial state at t = 0
  double y0 = 0.0;
  double t_end = 0.0;  // integration horizon (> 0)
  // Fixed RK4 macro step per region (> 0; the last step is shortened to
  // land on t_end, and steps truncate at sigma crossings).
  double dt[2] = {0.0, 0.0};
  // Early-stop predicate |x| inv_x_scale + |y| inv_y_scale < stop_tol,
  // checked after every macro step (stop_tol 0 disables) — mirrors
  // FluidRunOptions::convergence_tol.
  double inv_x_scale = 0.0;
  double inv_y_scale = 0.0;
  double stop_tol = 0.0;
};

// Per-lane integration summary: exactly the quantities the numeric
// strong-stability verdict consumes from a scalar core::FluidRun.
// Extrema are over the discrete sample set {macro-step ends, localized
// crossing points}, the initial state excluded — the same sample set the
// scalar driver records into its trajectory.
struct LaneResult {
  double max_x = 0.0;
  double min_x = 0.0;
  bool crossed = false;        // at least one sigma crossing
  double first_crossing_t = 0.0;
  // Extrema from the first crossing on; 0 when no crossing occurred
  // (mirrors FluidRun's post-switch fields, which fold from 0).
  double post_switch_max_x = 0.0;
  double post_switch_min_x = 0.0;
  bool completed = false;  // reached t_end or stopped via stop_tol
  bool converged = false;  // stopped early via stop_tol
  // The lane's state went non-finite (NaN/Inf) and it was retired
  // immediately with completed = false; nonfinite_t is the time of the
  // last finite state.  Without this guard a NaN lane's clock never
  // satisfies t >= t_end (NaN comparisons are false) and
  // run_to_completion spins forever.
  bool nonfinite = false;
  double nonfinite_t = 0.0;
  std::uint32_t steps = 0;
  std::uint32_t crossings = 0;
};

struct BatchOptions {
  // Bisection iterations on the Hermite interpolant per crossing.
  int max_bisections = 48;
};

class BatchIntegrator {
 public:
  explicit BatchIntegrator(BatchOptions options = {});

  // Loads n lanes (all become active, t = 0).  Scratch is resized, not
  // shrunk: after the first reset at the high-water lane count, further
  // resets and all stepping allocate nothing.
  void reset(const BatchLane* lanes, std::size_t n);
  void reset(const std::vector<BatchLane>& lanes) {
    reset(lanes.data(), lanes.size());
  }

  // Advances every active lane by one of its own macro steps (lanes are
  // independent — there is no shared clock), localizing crossings and
  // retiring lanes that reach t_end or their stop predicate.  Retired
  // lanes are compacted out of the active set.  Returns the number of
  // lanes still active.
  std::size_t step_all();

  // Steps until every lane has retired.
  void run_to_completion();

  std::size_t active() const { return active_; }
  std::size_t size() const { return results_.size(); }

  // Results indexed like the lanes passed to reset().  Valid for retired
  // lanes; fully populated once run_to_completion/step_all reports 0.
  const std::vector<LaneResult>& results() const { return results_; }

  // Read-only views of the live SoA state (active lanes, compacted; use
  // lane_ids() to map a slot back to its reset() index).
  const double* x() const { return x_.data(); }
  const double* y() const { return y_.data(); }
  const double* t() const { return t_.data(); }
  const std::uint8_t* region() const { return reg_.data(); }
  const std::uint32_t* lane_ids() const { return ids_.data(); }

 private:
  void commit_plain(std::size_t i, double h);
  void commit_at_crossing(std::size_t i, double h);
  void fold_sample(std::size_t i, double xs);
  bool retire_if_done(std::size_t i);
  void retire_nonfinite(std::size_t i);

  BatchOptions options_;
  std::size_t active_ = 0;

  // SoA lane state.
  std::vector<double> x_, y_, t_, dt0_, dt1_, tend_;
  std::vector<double> sx_, sy_, dr0_, dr1_, ga0_, ga1_, gb0_, gb1_;
  std::vector<double> ivx_, ivy_, stol_;
  std::vector<std::uint8_t> reg_, swi_;
  std::vector<std::uint32_t> ids_;
  // Pass-1 scratch: candidate step ends and sigma at both ends.
  std::vector<double> xn_, yn_, s0_, s1_, hcur_;
  // Per-lane running statistics.
  std::vector<double> maxx_, minx_, pmaxx_, pminx_, fct_;
  std::vector<std::uint8_t> crossed_;
  std::vector<std::uint32_t> steps_, ncross_;
  // Rate limit for non-finite lane diagnostics (fail fast, log the
  // first few offending lanes, keep the per-lane flags as the tally).
  LogRateLimit nonfinite_warnings_{3};

  std::vector<LaneResult> results_;
};

}  // namespace bcn::ode
