#include "ode/hybrid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include <optional>

#include "common/log.h"
#include "common/math.h"
#include "obs/tracing.h"
#include "ode/events.h"
#include "ode/steppers.h"

namespace bcn::ode {
namespace {

// Finds the earliest guard crossing inside one accepted step, if any.
struct EarliestEvent {
  LocatedEvent event;
  int guard_index = -1;
};

std::optional<EarliestEvent> earliest_guard_crossing(
    const std::vector<Guard>& guards, const DenseOutput& dense) {
  std::optional<EarliestEvent> earliest;
  for (std::size_t gi = 0; gi < guards.size(); ++gi) {
    const auto ev = locate_event(guards[gi], dense);
    if (!ev) continue;
    if (!earliest || ev->t < earliest->event.t) {
      earliest = EarliestEvent{*ev, static_cast<int>(gi)};
    }
  }
  return earliest;
}

}  // namespace

HybridResult integrate_hybrid(const HybridSystem& system, double t0, Vec2 z0,
                              double t1, const HybridOptions& options) {
  assert(!system.modes.empty());
  assert(system.mode_of);

  HybridResult result;
  if (!std::isfinite(z0.x) || !std::isfinite(z0.y)) {
    result.nonfinite = true;
    result.nonfinite_t = t0;
    BCN_LOG_ERROR("ode: non-finite initial state (%g, %g) at t=%.9g", z0.x,
                  z0.y, t0);
    return result;
  }
  result.trajectory.push_back(t0, z0);
  if (t1 <= t0) {
    result.completed = true;
    return result;
  }

  obs::TraceSpan call_span("ode.integrate_hybrid", "span_t", t1 - t0);

  // One stepper per mode; they share tolerances.
  std::vector<Dopri5> steppers;
  steppers.reserve(system.modes.size());
  for (const Rhs& f : system.modes) steppers.emplace_back(f, options.tol);

  const double span = t1 - t0;
  const double max_step =
      options.max_step > 0.0 ? options.max_step : span / 100.0;

  double t = t0;
  Vec2 z = z0;
  int mode = system.mode_of(t, z);
  assert(mode >= 0 && static_cast<std::size_t>(mode) < system.modes.size());

  Vec2 k1 = steppers[mode].compute_k1(t, z);
  double h = std::min(steppers[mode].initial_step_size(t, z), max_step);
  h = std::min(h, t1 - t);

  double next_record =
      options.record_interval > 0.0 ? t0 + options.record_interval : 0.0;

  auto record_dense = [&](const DenseOutput& dense, double upto) {
    if (options.record_interval <= 0.0) return;
    while (next_record <= upto + 1e-18) {
      result.trajectory.push_back(next_record, dense.eval(next_record));
      next_record += options.record_interval;
    }
  };

  std::size_t switches = 0;
  double min_dt = std::numeric_limits<double>::infinity();
  const auto note_accepted_dt = [&](double dt) {
    min_dt = std::min(min_dt, dt);
    result.min_accepted_step = min_dt;
  };

  // One child span per inter-switch segment: a Perfetto view of a hybrid
  // run shows how wall-clock splits across the mode episodes.  Strict
  // nesting holds — the segment span is always the innermost open span
  // on this thread whenever it is re-emplaced.
  std::optional<obs::TraceSpan> segment;
  if (obs::tracing_enabled()) {
    segment.emplace("ode.hybrid_segment", "mode", mode);
  }
  const auto next_segment = [&](int new_mode) {
    if (!obs::tracing_enabled()) return;
    segment.reset();
    segment.emplace("ode.hybrid_segment", "mode", new_mode);
  };
  for (std::size_t i = 0; i < options.max_steps && t < t1; ++i) {
    const Dopri5Step step = steppers[mode].trial_step(t, z, k1, h);
    if (step.error > 1.0) {
      ++result.steps_rejected;
      h = steppers[mode].next_step_size(h, step.error);
      if (h < options.min_step) return result;
      continue;
    }
    ++result.steps_accepted;
    // Fail fast on a non-finite step end: a NaN error estimate passes
    // the acceptance test above (NaN > 1.0 is false), so this is the
    // first place a blown-up RHS becomes detectable.  Abort before the
    // dense output / guard machinery sees the poisoned coefficients.
    if (!std::isfinite(step.z_new.x) || !std::isfinite(step.z_new.y)) {
      result.nonfinite = true;
      result.nonfinite_t = t;
      BCN_LOG_ERROR(
          "ode: non-finite state after step from t=%.9g (mode %d); "
          "aborting integration",
          t, mode);
      segment.reset();
      return result;
    }
    const DenseOutput dense(t, h, step.rcont);
    const double step_end = t + h;

    const auto crossing = earliest_guard_crossing(system.guards, dense);
    if (crossing && crossing->event.t > t && crossing->event.t < step_end) {
      // Truncate the step at the event.
      result.event_bisection_iterations +=
          static_cast<std::size_t>(crossing->event.bisection_iterations);
      note_accepted_dt(crossing->event.t - t);
      record_dense(dense, crossing->event.t);
      t = crossing->event.t;
      z = crossing->event.z;
      if (options.record_interval <= 0.0) result.trajectory.push_back(t, z);

      // Escape past the surface so the next step starts strictly inside the
      // new region.  The bisection leaves z within its tolerance of the
      // surface, possibly still on the departing side; take growing micro
      // Euler probes until the guard sign matches the step-end sign.
      const Guard& guard = system.guards[crossing->guard_index];
      const int target_sign = sign(guard(step_end, dense.eval(step_end)));
      const int from_mode = mode;
      double esc = std::max(1e-9 * h, options.min_step);
      for (int attempt = 0; attempt < 40; ++attempt) {
        const int probe_mode = system.mode_of(t, z);
        const Vec2 f_here = system.modes[probe_mode](t, z);
        const Vec2 z_probe = z + esc * f_here;
        const double t_probe = t + esc;
        if (sign(guard(t_probe, z_probe)) == target_sign ||
            target_sign == 0) {
          t = t_probe;
          z = z_probe;
          break;
        }
        esc *= 4.0;
      }
      mode = system.mode_of(t, z);
      if (mode != from_mode) {
        result.switches.push_back({t, z, crossing->guard_index, from_mode,
                                   mode,
                                   crossing->event.bisection_iterations});
        if (++switches > options.max_switches) return result;
        next_segment(mode);
      }
      k1 = steppers[mode].compute_k1(t, z);
      h = std::min({h, max_step, t1 - t});
      if (h <= 0.0) break;
      continue;
    }

    // Plain accepted step.
    note_accepted_dt(h);
    record_dense(dense, step_end);
    t = step_end;
    z = step.z_new;
    k1 = step.k_last;
    if (options.record_interval <= 0.0) result.trajectory.push_back(t, z);

    // Safety net: a mode change without a guard sign change happens when
    // the step started exactly on a surface (guard = 0 at the start is not
    // a crossing), e.g. leaving a buffer wall from the corner state.
    // Localizing is impossible from the guard alone, so switch at the step
    // end; steps near such departures are small.
    const int mode_now = system.mode_of(t, z);
    if (mode_now != mode) {
      result.switches.push_back({t, z, -1, mode, mode_now, 0});
      if (++switches > options.max_switches) return result;
      mode = mode_now;
      k1 = steppers[mode].compute_k1(t, z);
      next_segment(mode);
    }

    if (options.stop_when && options.stop_when(t, z)) {
      result.completed = true;
      result.stopped_early = true;
      return result;
    }

    h = steppers[mode].next_step_size(h, step.error);
    h = std::min({h, max_step, t1 - t});
    if (h <= 0.0) break;
    // Step size collapsed.  Break rather than return: when the remaining
    // span is a rounding sliver of t1 (h = t1 - t underflowing min_step
    // after ~span/h accumulations), the run IS complete and the final
    // tolerance check below must get the chance to say so.
    if (h < options.min_step && t < t1) break;
  }

  if (options.record_interval > 0.0 && result.trajectory.back().t < t) {
    result.trajectory.push_back(t, z);
  }
  result.completed = t >= t1 - 1e-12 * std::max(1.0, std::abs(t1));
  segment.reset();
  call_span.arg("accepted", static_cast<double>(result.steps_accepted));
  call_span.arg("switches", static_cast<double>(result.switches.size()));
  return result;
}

}  // namespace bcn::ode
