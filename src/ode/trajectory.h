// Sampled solution of a planar ODE, with query helpers used by the
// phase-plane analysis and the benchmark harnesses.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/math.h"

namespace bcn::ode {

struct Sample {
  double t = 0.0;
  Vec2 z;
};

// A local extremum of one state component along a trajectory.
struct Extremum {
  double t = 0.0;
  double value = 0.0;
  bool is_maximum = false;
};

class Trajectory {
 public:
  Trajectory() = default;

  void push_back(double t, Vec2 z) { samples_.push_back({t, z}); }
  void clear() { samples_.clear(); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const Sample& front() const { return samples_.front(); }
  const Sample& back() const { return samples_.back(); }
  const std::vector<Sample>& samples() const { return samples_; }

  double duration() const {
    return empty() ? 0.0 : samples_.back().t - samples_.front().t;
  }

  // Linear interpolation of the state at time t (clamped to the sampled
  // range).  Requires a non-empty trajectory.
  Vec2 interpolate(double t) const;

  // Global min / max of the selected component (0 -> x, 1 -> y).
  double min_component(int component) const;
  double max_component(int component) const;

  // All interior local extrema of the selected component.  A sample is an
  // extremum when its value is strictly greater (resp. smaller) than both
  // neighbours; plateaus report their first sample.
  std::vector<Extremum> local_extrema(int component) const;

  // Times at which the scalar functional g(t, z) crosses zero, located by
  // linear interpolation between bracketing samples.
  std::vector<double> zero_crossings(
      const std::function<double(double, Vec2)>& g) const;

  // Largest |z| distance from `target` over the tail portion of the
  // trajectory (fraction in (0, 1]); used for convergence checks.
  double tail_distance(Vec2 target, double tail_fraction = 0.1) const;

  // Keeps at most every `stride`-th sample plus the final one; used to thin
  // dense traces before writing CSV/SVG.
  Trajectory decimate(std::size_t stride) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace bcn::ode
