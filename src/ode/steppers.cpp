#include "ode/steppers.h"

namespace bcn::ode {

Vec2 euler_step(const Rhs& f, double t, Vec2 z, double h) {
  return z + h * f(t, z);
}

Vec2 heun_step(const Rhs& f, double t, Vec2 z, double h) {
  const Vec2 k1 = f(t, z);
  const Vec2 k2 = f(t + h, z + h * k1);
  return z + (h / 2.0) * (k1 + k2);
}

Vec2 rk4_step(const Rhs& f, double t, Vec2 z, double h) {
  const Vec2 k1 = f(t, z);
  const Vec2 k2 = f(t + h / 2.0, z + (h / 2.0) * k1);
  const Vec2 k3 = f(t + h / 2.0, z + (h / 2.0) * k2);
  const Vec2 k4 = f(t + h, z + h * k3);
  return z + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
}

}  // namespace bcn::ode
