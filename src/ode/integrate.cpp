#include "ode/integrate.h"

#include <algorithm>
#include <cmath>

#include "obs/tracing.h"
#include "ode/steppers.h"

namespace bcn::ode {

Trajectory integrate_fixed(const Rhs& f, double t0, Vec2 z0, double t1,
                           const FixedStepOptions& options) {
  Trajectory out;
  const double h0 = options.step;
  if (t1 <= t0 || h0 <= 0.0) {
    out.push_back(t0, z0);
    return out;
  }
  const auto n_steps = static_cast<std::size_t>(std::ceil((t1 - t0) / h0));
  out.reserve(n_steps + 1);
  out.push_back(t0, z0);
  double t = t0;
  Vec2 z = z0;
  while (t < t1) {
    const double h = std::min(h0, t1 - t);
    switch (options.stepper) {
      case Stepper::Euler: z = euler_step(f, t, z, h); break;
      case Stepper::Heun: z = heun_step(f, t, z, h); break;
      case Stepper::Rk4: z = rk4_step(f, t, z, h); break;
    }
    t += h;
    out.push_back(t, z);
  }
  return out;
}

AdaptiveResult integrate_adaptive(const Rhs& f, double t0, Vec2 z0, double t1,
                                  const AdaptiveOptions& options) {
  AdaptiveResult result;
  result.trajectory.push_back(t0, z0);
  if (t1 <= t0) {
    result.completed = true;
    return result;
  }

  // One span per DOPRI5 step loop; the step counts ride along as args.
  obs::TraceSpan span("ode.integrate_adaptive", "span_t", t1 - t0);

  const Dopri5 stepper(f, options.tol);
  double t = t0;
  Vec2 z = z0;
  Vec2 k1 = stepper.compute_k1(t, z);
  double h = stepper.initial_step_size(t, z);
  if (options.max_step > 0.0) h = std::min(h, options.max_step);
  h = std::min(h, t1 - t);

  double next_record = t0 + options.record_interval;

  for (std::size_t i = 0; i < options.max_steps && t < t1; ++i) {
    const Dopri5Step step = stepper.trial_step(t, z, k1, h);
    if (step.error > 1.0) {
      ++result.steps_rejected;
      h = stepper.next_step_size(h, step.error);
      if (h < options.min_step) return result;  // gave up
      continue;
    }
    ++result.steps_accepted;
    result.min_accepted_step = result.steps_accepted == 1
                                   ? h
                                   : std::min(result.min_accepted_step, h);
    const DenseOutput dense(t, h, step.rcont);
    t += h;
    z = step.z_new;
    k1 = step.k_last;

    if (options.record_interval > 0.0) {
      while (next_record <= t && next_record <= t1) {
        result.trajectory.push_back(next_record, dense.eval(next_record));
        next_record += options.record_interval;
      }
    } else {
      result.trajectory.push_back(t, z);
    }

    h = stepper.next_step_size(h, step.error);
    if (options.max_step > 0.0) h = std::min(h, options.max_step);
    h = std::min(h, t1 - t);
    if (h <= 0.0) break;
    if (h < options.min_step && t < t1) return result;
  }

  if (options.record_interval > 0.0 &&
      result.trajectory.back().t < t) {
    result.trajectory.push_back(t, z);
  }
  result.completed = t >= t1 - 1e-15 * std::max(1.0, std::abs(t1));
  span.arg("accepted", static_cast<double>(result.steps_accepted));
  span.arg("rejected", static_cast<double>(result.steps_rejected));
  return result;
}

}  // namespace bcn::ode
