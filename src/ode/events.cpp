#include "ode/events.h"

#include <cmath>

#include "common/math.h"
#include "obs/tracing.h"

namespace bcn::ode {

std::optional<LocatedEvent> locate_event(const Guard& g,
                                         const DenseOutput& dense,
                                         double ttol) {
  const double t0 = dense.t0();
  const double t1 = dense.t1();
  const double g0 = g(t0, dense.eval(t0));
  const double g1 = g(t1, dense.eval(t1));
  if (g0 == 0.0) {
    // Event exactly at the step start: report it only if we are actually
    // leaving the surface (callers handle re-arming); treat as no event so
    // the driver does not loop on the surface.
    return std::nullopt;
  }
  if (g1 == 0.0) {
    return LocatedEvent{t1, dense.eval(t1), 0};
  }
  if (sign(g0) == sign(g1)) return std::nullopt;

  // Span only around actual bisections (the cheap same-sign rejection
  // above fires every step and stays untraced).
  obs::TraceSpan span("ode.locate_event");
  int iterations = 0;
  const auto root = bisect(
      [&](double t) { return g(t, dense.eval(t)); }, t0, t1,
      ttol * std::max(1.0, t1 - t0), 200, &iterations);
  span.arg("iterations", iterations);
  if (!root) return std::nullopt;
  return LocatedEvent{*root, dense.eval(*root), iterations};
}

}  // namespace bcn::ode
