// Victim flow: the congestion-spreading story from the paper's
// introduction, runnable in one command.  An innocent flow shares only an
// edge uplink with eight heavy flows whose traffic congests a slow core
// port.  Hop-by-hop PAUSE punishes everyone; BCN throttles the culprits
// at the source and leaves the victim alone.
#include <cstdio>

#include "common/table.h"
#include "sim/multihop.h"

int main() {
  using namespace bcn;

  std::printf("victim-flow demo: 8 culprits + 1 victim -> edge -(10G)-> "
              "core {1G hot port | 10G cold port}\n\n");

  TablePrinter table(
      {"scheme", "victim gets", "of offered", "PAUSE to sources"});
  for (const bool use_bcn : {false, true}) {
    sim::MultihopConfig cfg;
    cfg.enable_pause = true;
    cfg.enable_bcn = use_bcn;
    const auto r = sim::run_victim_scenario(cfg);
    table.add_row(
        {use_bcn ? "PAUSE + BCN" : "PAUSE only",
         TablePrinter::format(r.victim_throughput / 1e9, 3) + " Gbps",
         TablePrinter::format(100.0 * r.victim_throughput / cfg.offered_rate,
                              3) +
             "%",
         TablePrinter::format(
             static_cast<double>(r.pauses_edge_to_sources))});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nWhy: PAUSE stops the whole edge uplink, so congestion at "
              "the hot core port rolls back onto every flow sharing the "
              "edge.  BCN messages travel past the edge to the *sources "
              "of the sampled frames* -- only the culprits slow down.\n");
  return 0;
}
