// Parameter tuning: given a fixed plant (N, C, q0, B), search the
// (Gi, Gd) gain grid for configurations that are strongly stable AND
// converge quickly -- the "reasonable trade-off" the paper's Section IV
// remarks call for.  Ranks candidates by estimated convergence time under
// the strong-stability constraint.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/sweep.h"
#include "common/table.h"
#include "core/analytic_tracer.h"
#include "core/stability.h"

int main() {
  using namespace bcn;

  core::BcnParams plant = core::BcnParams::standard_draft();
  plant.buffer = 8e6;  // a realistic switch buffer: 1 MB
  plant.qsc = 7.5e6;
  std::printf("plant: N=%g, C=%g Gbps, q0=%g Mbit, B=%g Mbit\n\n",
              plant.num_sources, plant.capacity / 1e9, plant.q0 / 1e6,
              plant.buffer / 1e6);

  struct Candidate {
    double gi, gd;
    double required_buffer;
    double convergence_time;  // seconds to contract the transient by 100x
    bool stable;
  };
  std::vector<Candidate> candidates;

  for (const double gi : analysis::logspace(0.125, 16.0, 8)) {
    for (const double gd : analysis::logspace(1.0 / 512.0, 0.25, 8)) {
      core::BcnParams p = plant;
      p.gi = gi;
      p.gd = gd;
      const auto report = core::analyze_stability(p);
      Candidate c{gi, gd, report.theorem1_required_buffer, 1e18,
                  report.proposition_satisfied};
      if (c.stable) {
        // Convergence estimate: cycles-to-1% x cycle period, from the
        // closed-form trace.
        const auto trace = core::AnalyticTracer(p).trace();
        const auto ratio = trace.contraction_ratio();
        if (ratio && *ratio < 1.0 && trace.rounds.size() >= 3 &&
            trace.rounds[1].duration && trace.rounds[2].duration) {
          const double cycle_time =
              *trace.rounds[1].duration + *trace.rounds[2].duration;
          const double cycles = std::log(0.01) / std::log(*ratio);
          c.convergence_time = cycles * cycle_time;
        } else if (trace.converged) {
          // Node-like: converged within the traced rounds.
          c.convergence_time =
              trace.rounds.back().t_start +
              trace.rounds.back().duration.value_or(0.0);
        }
      }
      candidates.push_back(c);
    }
  }

  const auto stable_count =
      std::count_if(candidates.begin(), candidates.end(),
                    [](const Candidate& c) { return c.stable; });
  std::printf("%lld of %zu gain pairs are strongly stable for this buffer\n\n",
              static_cast<long long>(stable_count), candidates.size());

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.stable != b.stable) return a.stable;
              return a.convergence_time < b.convergence_time;
            });

  TablePrinter table({"rank", "Gi", "Gd", "required B (Mbit)",
                      "convergence to 1% (ms)"});
  for (std::size_t i = 0; i < candidates.size() && i < 10; ++i) {
    const auto& c = candidates[i];
    if (!c.stable) break;
    table.add_row({TablePrinter::format(static_cast<double>(i + 1)),
                   TablePrinter::format(c.gi, 4),
                   TablePrinter::format(c.gd, 4),
                   TablePrinter::format(c.required_buffer / 1e6, 4),
                   TablePrinter::format(c.convergence_time * 1e3, 4)});
  }
  std::fputs(table.to_string("top strongly-stable gain pairs").c_str(),
             stdout);

  std::printf("\nNote the trade-off: the fastest-converging stable pairs "
              "sit close to the stability boundary; conservative gains "
              "buy margin with sluggish convergence (paper Section IV "
              "remarks).\n");
  return 0;
}
