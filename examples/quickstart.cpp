// Quickstart: analyze a BCN configuration in ~30 lines of API use.
//
//   1. describe the plant and gains (BcnParams),
//   2. ask the phase-plane engine for the stability verdicts,
//   3. integrate the fluid model and look at the queue transient.
#include <cstdio>

#include "core/simulate.h"
#include "core/stability.h"
#include "plot/ascii.h"

int main() {
  using namespace bcn;

  // The configuration from the paper's running example: 50 sources into a
  // 10 Gbps bottleneck with the standard-draft gains.
  core::BcnParams params = core::BcnParams::standard_draft();
  std::printf("%s\n\n", params.describe().c_str());

  // Closed-form analysis: case classification, transient extrema,
  // Propositions 2-4 and Theorem 1.
  const core::StabilityReport report = core::analyze_stability(params);
  std::printf("%s\n\n", report.summary().c_str());

  // Numeric ground truth on the nonlinear fluid model (eq. (8)).
  const core::NumericVerdict verdict = core::numeric_strong_stability(params);
  std::printf("numeric: %s, peak queue %.2f Mbit vs buffer %.2f Mbit\n\n",
              verdict.strongly_stable ? "strongly stable"
                                      : "NOT strongly stable",
              (verdict.max_x + params.q0) / 1e6, params.buffer / 1e6);

  // Watch the transient: integrate 1.5 ms of the fluid model and plot the
  // queue against the buffer limit.
  const core::FluidModel model(params, core::ModelLevel::Nonlinear);
  core::FluidRunOptions options;
  options.duration = 1.5e-3;
  options.record_interval = 2e-6;
  const core::FluidRun run = core::simulate_fluid(model, options);

  plot::Series queue;
  queue.name = "q(t) [Mbit]";
  for (const auto& s : run.trajectory.samples()) {
    queue.add(s.t * 1e3, (s.z.x + params.q0) / 1e6);
  }
  plot::AsciiOptions ascii;
  ascii.title = "queue transient (note the overshoot beyond B = 5 Mbit)";
  ascii.x_label = "t [ms]";
  std::printf("%s", plot::render_ascii({queue}, ascii).c_str());

  std::printf("\nFix: size the buffer per Theorem 1 (> %.2f Mbit) or lower "
              "Gi / raise Gd.\n",
              report.theorem1_required_buffer / 1e6);
  return 0;
}
