// Incast: the cluster-filesystem traffic pattern the paper's model
// assumes (Section III.A) -- N servers answer a parallel read at once and
// their responses collide at the core switch.  Runs the packet-level
// simulator with BCN enabled and disabled and compares drops, throughput
// and queue behavior.
#include <cstdio>

#include "common/table.h"
#include "plot/ascii.h"
#include "sim/network.h"

int main() {
  using namespace bcn;

  core::BcnParams p;
  p.num_sources = 32;    // 32 storage servers
  p.capacity = 10e9;     // 10 Gbps link into the client rack
  p.q0 = 2.5e6;
  p.buffer = 16e6;       // 2 MB switch buffer
  p.qsc = 15e6;
  p.w = 2.0;
  p.pm = 0.1;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;

  struct Outcome {
    const char* label;
    std::uint64_t drops;
    std::uint64_t pauses;
    double throughput;
    double peak_queue;
    sim::SimStats stats;
  };
  std::vector<Outcome> outcomes;

  for (const bool bcn_enabled : {true, false}) {
    sim::NetworkConfig cfg;
    cfg.params = p;
    if (!bcn_enabled) {
      // Disable BCN by making sampling (and thus feedback) vanish: the
      // congestion point never samples, only PAUSE remains.
      cfg.params.pm = 1e-9;
    }
    // Incast burst: every server starts at 1.5 Gbps (48 Gbps aggregate
    // into a 10 Gbps link).
    cfg.initial_rate = 1.5e9;
    cfg.record_interval = 50 * sim::kMicrosecond;
    sim::Network net(cfg);
    net.run(50 * sim::kMillisecond);
    const auto& st = net.stats();
    outcomes.push_back({bcn_enabled ? "BCN + PAUSE" : "PAUSE only",
                        st.counters.frames_dropped,
                        st.counters.pause_frames,
                        st.throughput(50 * sim::kMillisecond),
                        st.max_queue(), st});
  }

  TablePrinter table({"scheme", "drops", "PAUSE frames", "throughput (Gbps)",
                      "peak queue (Mbit)"});
  for (const auto& o : outcomes) {
    table.add_row({o.label,
                   TablePrinter::format(static_cast<double>(o.drops)),
                   TablePrinter::format(static_cast<double>(o.pauses)),
                   TablePrinter::format(o.throughput / 1e9, 4),
                   TablePrinter::format(o.peak_queue / 1e6, 4)});
  }
  std::fputs(table.to_string("32-server incast, 48 Gbps burst into 10 Gbps")
                 .c_str(),
             stdout);

  // Queue traces overlaid.
  std::vector<plot::Series> series;
  for (const auto& o : outcomes) {
    plot::Series s;
    s.name = o.label;
    for (const auto& tp : o.stats.trace()) {
      s.add(tp.t / 1e6, tp.queue_bits / 1e6);
    }
    series.push_back(std::move(s));
  }
  plot::AsciiOptions ascii;
  ascii.title = "core-switch queue during incast";
  ascii.x_label = "t [ms]";
  ascii.y_label = "q [Mbit]";
  std::printf("\n%s", plot::render_ascii(series, ascii).c_str());

  std::printf("\nBCN shapes the senders at the edge and settles the queue "
              "at q0; PAUSE alone saturates the buffer and relies on "
              "drops/back-pressure (the head-of-line problem the paper's "
              "introduction describes).\n");
  return 0;
}
