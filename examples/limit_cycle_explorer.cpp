// Limit-cycle explorer: probe the Poincare return map of the BCN phase
// plane at every model level, hunt for fixed points, and relate the
// contraction ratio to how long oscillations persist.
#include <cstdio>

#include "common/table.h"
#include "core/analytic_tracer.h"
#include "core/poincare.h"

int main() {
  using namespace bcn;

  const core::BcnParams p = core::BcnParams::standard_draft();
  std::printf("%s\n\n", p.describe().c_str());

  core::PoincareOptions popts;
  popts.max_time = 0.05;

  TablePrinter table({"amplitude s", "P(s)/s linearized", "P(s)/s nonlinear",
                      "P(s)/s clipped"});
  const core::PoincareMap lin(
      core::FluidModel(p, core::ModelLevel::Linearized), popts);
  const core::PoincareMap non(
      core::FluidModel(p, core::ModelLevel::Nonlinear), popts);
  const core::PoincareMap clip(
      core::FluidModel(p, core::ModelLevel::Clipped), popts);
  for (double s = 1e9; s <= 2.56e11; s *= 4.0) {
    auto fmt = [](std::optional<double> r) {
      return r ? TablePrinter::format(*r, 5) : std::string("none");
    };
    table.add_row({TablePrinter::format(s, 3), fmt(lin.ratio(s)),
                   fmt(non.ratio(s)), fmt(clip.ratio(s))});
  }
  std::fputs(
      table.to_string("Poincare return map on the switching line").c_str(),
      stdout);

  core::CycleSearchOptions copts;
  copts.poincare = popts;
  copts.s_lo = 1e9;
  copts.s_hi = 2e11;
  for (const auto& [level, name] :
       {std::pair{core::ModelLevel::Nonlinear, "nonlinear"},
        std::pair{core::ModelLevel::Clipped, "clipped"}}) {
    const auto cycle =
        core::find_limit_cycle(core::FluidModel(p, level), copts);
    if (cycle) {
      std::printf("\n%s: limit cycle found! amplitude=%.4g period=%.4g s "
                  "x-range=[%.4g, %.4g]\n",
                  name, cycle->amplitude, cycle->period, cycle->min_x,
                  cycle->max_x);
    } else {
      std::printf("\n%s: no limit cycle -- the return map contracts at "
                  "every probed amplitude.\n",
                  name);
    }
  }

  const auto ratio = core::AnalyticTracer(p).trace().contraction_ratio();
  if (ratio && *ratio < 1.0) {
    const double cycles_to_half = std::log(0.5) / std::log(*ratio);
    std::printf("\ncontraction ratio %.6f -> the oscillation needs %.0f "
                "cycles to lose half its amplitude.  That is why BCN "
                "experiments show what looks like a limit cycle: the "
                "fluid dynamics are a contraction, but an extremely slow "
                "one.\n",
                *ratio, cycles_to_half);
  }
  return 0;
}
